"""Command-line interface: run any experiment from the shell.

Usage::

    python -m repro list                 # enumerate experiments
    python -m repro table1               # one experiment
    python -m repro fig5 --scale paper   # full paper scale
    python -m repro all --scale smoke    # everything, fast
    python -m repro all --workers auto --artifacts .artifacts
    python -m repro survey --locations 20 --min-coverage 0.9
    python -m repro survey --locations 64 --workers 4   # parallel decode
    python -m repro survey --locations 20 --metrics metrics.json
    python -m repro trace --locations 12 --workers 4    # traced survey
    python -m repro coordinate --locations 40 --shards 8 --state-dir s
    python -m repro coordinate --drill --lease-ttl 3    # chaos drill
    python -m repro bench                # refresh BENCH_*.json

Results render as plain-text tables on stdout.  ``survey`` runs the
deployable decoder end-to-end, prints a coverage/degradation summary,
and exits nonzero only when coverage falls below ``--min-coverage``;
``--metrics PATH`` additionally writes the observability-counter
delta the survey moved.  ``trace`` runs the same survey under a
recording :class:`~repro.obs.trace.Tracer` and a voting ensemble,
exports the span tree to ``--trace-out`` (default ``trace.jsonl``),
and audits it: the trace must be structurally sound and the metrics
must reconcile exactly against the report's own counters (see
:mod:`repro.obs.audit`).  ``bench`` runs the perf-marked benchmarks,
refusing to overwrite ``BENCH_*.json`` documents recorded at a
different commit unless ``--force`` is given.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

from .detect.train import TrainConfig
from .experiments import (
    PAPER_RUNNERS,
    ExperimentConfig,
    ExperimentSuite,
    paper_config,
    smoke_config,
)
from .experiments.extensions import (
    run_correlation_ablation,
    run_cost_accounting,
    run_fault_drill,
    run_few_shot_languages,
    run_label_efficiency,
    run_label_noise,
    run_multi_frame,
    run_weather_robustness,
)

#: Descriptions for the paper experiments; the runners themselves come
#: from :data:`repro.experiments.PAPER_RUNNERS` so the CLI menu can
#: never drift from what :meth:`ExperimentSuite.run_all` executes.
_PAPER_DESCRIPTIONS = {
    "table1": "Table I: detector accuracy",
    "fig2": "Fig. 2: augmentation ablation",
    "fig3": "Fig. 3: SNR robustness",
    "table2": "Table II: example responses",
    "fig4": "Fig. 4: prompt structure",
    "fig5": "Fig. 5: LLM accuracy + voting",
    "tables3to6": "Tables III-VI: per-LLM confusion",
    "fig6": "Fig. 6: prompt languages",
    "param": "§IV-C4: temperature/top-p",
    "prior": "§IV-B3: prior work",
}

#: Experiment name → (description, runner over a suite).
EXPERIMENTS = {
    name: (_PAPER_DESCRIPTIONS.get(name, name), runner)
    for name, runner in PAPER_RUNNERS.items()
}
EXPERIMENTS.update(
    {
        "label-noise": ("Ext. A: annotation noise", run_label_noise),
        "few-shot": ("Ext. B: few-shot languages", run_few_shot_languages),
        "multi-frame": ("Ext. C: multi-frame fusion", run_multi_frame),
        "cost": ("Ext. D: cost accounting", run_cost_accounting),
        "correlation": (
            "Ext. E: voting vs error correlation",
            run_correlation_ablation,
        ),
        "label-efficiency": (
            "Ext. G: detector F1 vs label budget",
            run_label_efficiency,
        ),
        "weather": ("Ext. H: weather robustness", run_weather_robustness),
        "resilience": ("Ext. I: fault-tolerant survey drill", run_fault_drill),
    }
)


def _parse_workers(value: str) -> int | str:
    """``--workers`` accepts an integer or the literal ``auto``."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be an integer or 'auto', got {value!r}"
        ) from None


def _config_for(scale: str) -> ExperimentConfig:
    if scale == "paper":
        return paper_config()
    if scale == "smoke":
        return smoke_config()
    if scale == "bench":
        return ExperimentConfig(
            n_images=600,
            image_size=640,
            n_calibration_images=600,
            detector_train=TrainConfig(epochs=20, batch_size=16),
        )
    raise SystemExit(f"unknown scale: {scale!r}")


def _run_survey(args: argparse.Namespace, traced: bool = False) -> int:
    """Run one fault-tolerant survey and summarize its outcome.

    Exit status is 0 when coverage meets ``--min-coverage`` and 1
    otherwise — partial results are reported either way, so an
    operator can rerun with the same ``--checkpoint`` to resume.

    With ``traced`` (the ``trace`` command) the decoder drives the
    paper's three-model voting ensemble and renders pixels eagerly, so
    the recorded span tree covers every stage — fetch, render, LLM
    request, vote, merge — and the run ends with a determinism audit.
    """
    from .core.classifier import LLMIndicatorClassifier
    from .core.pipeline import NeighborhoodDecoder
    from .core.voting import VotingEnsemble
    from .geo.county import make_durham_like, make_robeson_like
    from .gsv.api import StreetViewClient
    from .gsv.dataset import build_survey_dataset
    from .llm.paper_targets import GEMINI_15_PRO, VOTING_MODEL_IDS
    from .llm.registry import build_clients
    from .resilience import CircuitBreaker, RetryPolicy

    county = (
        make_durham_like(seed=3)
        if args.county == "durham"
        else make_robeson_like(seed=2)
    )
    street_view = StreetViewClient(
        counties=[county],
        api_key="cli-survey",
        failure_rate=args.gsv_failure_rate,
        daily_quota=args.daily_quota,
    )
    use_cascade = bool(getattr(args, "cascade", False)) and not traced
    calibration = build_survey_dataset(n_images=60, size=256, seed=77)
    if traced:
        model_ids = tuple(VOTING_MODEL_IDS)
    elif use_cascade:
        from .llm.paper_targets import ALL_MODEL_IDS

        model_ids = tuple(ALL_MODEL_IDS)
    else:
        model_ids = (GEMINI_15_PRO,)
    clients = build_clients(
        [image.scene for image in calibration], model_ids=model_ids
    )
    if traced:
        brains: dict = {
            "ensemble": VotingEnsemble(
                classifiers={
                    model_id: LLMIndicatorClassifier(clients[model_id])
                    for model_id in model_ids
                }
            )
        }
    elif use_cascade:
        brains = {
            "cascade": _build_cascade(
                clients,
                threshold=args.cascade_threshold,
                precision=args.detector_precision,
            )
        }
    else:
        brains = {
            "classifier": LLMIndicatorClassifier(clients[GEMINI_15_PRO])
        }
    decoder = NeighborhoodDecoder(
        street_view=street_view,
        retry_policy=RetryPolicy(max_attempts=4, base_delay_s=0.05,
                                 max_delay_s=0.5),
        gsv_breaker=CircuitBreaker(name="gsv", failure_threshold=12,
                                   recovery_time_s=1.0),
        render_pixels=traced,
        **brains,
    )
    workers = 0 if args.workers == "auto" else args.workers
    use_async = bool(getattr(args, "use_async", False))
    if use_async and args.stream:
        report = asyncio.run(
            decoder.survey_stream_async(
                county,
                args.locations,
                seed=args.seed,
                checkpoint=args.checkpoint,
                max_inflight=args.max_inflight,
            )
        )
    elif use_async:
        report = asyncio.run(
            decoder.survey_async(
                county,
                args.locations,
                seed=args.seed,
                checkpoint=args.checkpoint,
                max_inflight=args.max_inflight,
            )
        )
    elif args.stream:
        report = decoder.survey_stream(
            county,
            args.locations,
            seed=args.seed,
            checkpoint=args.checkpoint,
            workers=workers,
            shard_size=args.shard_size,
        )
    else:
        report = decoder.survey(
            county,
            args.locations,
            seed=args.seed,
            checkpoint=args.checkpoint,
            workers=workers,
        )

    print(f"\n=== survey of {county.name} ===")
    if use_async:
        print(f"workers        async (max inflight {args.max_inflight})")
    else:
        print(f"workers        {args.workers if args.workers else 'auto'}")
    if args.stream:
        if use_async:
            print("mode           stream (async pipeline)")
        else:
            print(f"mode           stream (shard size {args.shard_size})")
    if report.pipeline_stats:
        ps = report.pipeline_stats
        print(
            f"aimd window    {ps['initial_limit']} -> {ps['final_limit']} "
            f"(peak inflight {ps['peak_inflight']}, "
            f"{ps['throttle_events']} throttle events, "
            f"{ps['decreases']} decreases)"
        )
    if report.batch_stats:
        bs = report.batch_stats
        print(
            f"micro-batches  {bs['batches']} dispatches / "
            f"{bs['batched_requests']} requests "
            f"(largest {bs['max_batch_size']})"
        )
    print(
        f"coverage       {report.coverage:.1%} "
        f"({report.completed_locations}/{report.requested_locations} "
        "locations)"
    )
    print(f"images         {report.images_classified}")
    print(f"fees           ${report.fees_usd:.3f}")
    print(f"degraded votes {report.degraded_votes}")
    if report.skipped_votes:
        print(f"skipped votes  {report.skipped_votes}")
    if report.cascade_stats:
        cs = report.cascade_stats
        print(
            f"cascade        tier0 {cs['tier0_indicators']} / "
            f"tier1 {cs['tier1_indicators']} / "
            f"tier2 {cs['tier2_indicators']} indicators "
            f"({cs['split_escalations']} splits, "
            f"{cs['deep_escalations']} deep, "
            f"{cs['detector_fallbacks']} fallbacks)"
        )
        for stage, totals in decoder.cascade.meter.stage_totals().items():
            print(
                f"  {stage:16s} {totals['requests']} calls, "
                f"{totals['prompt_tokens'] + totals['completion_tokens']} "
                f"tokens, ${totals['fees_usd']:.6f}"
            )
    stats = report.retry_stats.as_dict()
    print(
        f"fault handling {stats['retries']} retries, "
        f"{stats['failures']} failures, "
        f"{stats['breaker_blocks']} breaker blocks"
    )
    for failed in report.failed_locations:
        print(
            f"  FAILED location {failed.index} "
            f"({failed.latitude:.4f}, {failed.longitude:.4f}): "
            f"{failed.reason}"
        )
    for indicator, rate in report.indicator_rates().items():
        print(f"  {indicator.value:18s} {rate:.2f}")
    if args.metrics:
        metrics_path = Path(args.metrics)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(
            json.dumps(report.metrics, sort_keys=True, indent=2) + "\n"
        )
        print(f"metrics        {metrics_path}")
    if traced:
        from .obs.audit import audit_trace, reconcile_survey
        from .obs.trace import get_tracer

        mismatches = reconcile_survey(report)
        problems = audit_trace(get_tracer())
        for line in mismatches:
            print(f"  RECONCILE {line}")
        for line in problems:
            print(f"  TRACE {line}")
        if mismatches or problems:
            print("determinism audit FAILED")
            return 1
        print(
            "determinism audit ok: metrics reconcile with the report "
            "and the span tree is sound"
        )
    if report.coverage < args.min_coverage:
        print(
            f"coverage {report.coverage:.1%} below required "
            f"{args.min_coverage:.1%}"
            + (
                " — rerun with the same --checkpoint to resume"
                if args.checkpoint
                else ""
            )
        )
        return 1
    return 0


def _build_survey_decoder(county, seed: int = 77):
    """One single-classifier decoder, built the way ``survey`` builds it."""
    from .core.classifier import LLMIndicatorClassifier
    from .core.pipeline import NeighborhoodDecoder
    from .gsv.api import StreetViewClient
    from .gsv.dataset import build_survey_dataset
    from .llm.paper_targets import GEMINI_15_PRO
    from .llm.registry import build_clients

    calibration = build_survey_dataset(n_images=60, size=256, seed=seed)
    clients = build_clients(
        [image.scene for image in calibration], model_ids=(GEMINI_15_PRO,)
    )
    return NeighborhoodDecoder(
        street_view=StreetViewClient(counties=[county], api_key="cli-coord"),
        classifier=LLMIndicatorClassifier(clients[GEMINI_15_PRO]),
    )


def _build_cascade(
    clients,
    threshold: float | None = None,
    artifacts=None,
    precision: str | None = None,
):
    """Assemble the three-tier cascade the CLI ships.

    Trains the nano detector on one synthetic split, fits the margin
    calibration on a held-out split (both cached when ``artifacts`` is
    given), and wires the cheapest model as the tier-1 scout in front
    of the full four-model ensemble.  ``precision`` picks the tier-0
    inference tier (``--detector-precision``); ``None`` keeps the
    router's float32 default.
    """
    from .cascade import CascadeClassifier, load_or_fit_calibration
    from .core.classifier import LLMIndicatorClassifier
    from .core.voting import VotingEnsemble
    from .detect.train import TrainConfig, train_detector
    from .gsv.dataset import build_survey_dataset
    from .llm.paper_targets import GPT_4O_MINI

    train_images = build_survey_dataset(n_images=160, size=256, seed=21)
    holdout = build_survey_dataset(n_images=120, size=256, seed=33)
    detector = train_detector(
        train_images,
        train_config=TrainConfig(epochs=12, batch_size=16),
        cache=artifacts,
    ).model
    calibration = load_or_fit_calibration(artifacts, detector, holdout)
    ensemble = VotingEnsemble(
        classifiers={
            model_id: LLMIndicatorClassifier(client)
            for model_id, client in clients.items()
        }
    )
    kwargs: dict = {} if threshold is None else {"threshold": threshold}
    if precision is not None:
        kwargs["precision"] = precision
    return CascadeClassifier(
        detector=detector,
        calibration=calibration,
        scout=LLMIndicatorClassifier(clients[GPT_4O_MINI]),
        ensemble=ensemble,
        **kwargs,
    )


def _run_cascade(args: argparse.Namespace) -> int:
    """``repro cascade calibrate`` / ``repro cascade frontier``.

    ``calibrate`` fits (and caches, with ``--artifacts``) the margin
    calibration and prints the recommended doubt threshold for a
    validation split.  ``frontier`` (the default) sweeps the threshold
    grid, prints the accuracy-vs-cost table, and writes it (plus the
    reproducible JSON payload) to ``--frontier-out`` for CI to upload.
    """
    from .cascade import (
        recommend_threshold,
        render_frontier_table,
        sweep_frontier,
    )
    from .gsv.dataset import build_survey_dataset
    from .llm.paper_targets import ALL_MODEL_IDS
    from .llm.registry import build_clients

    artifacts = None
    if args.artifacts:
        from .artifacts import ArtifactCache

        artifacts = ArtifactCache(args.artifacts)
    calibration_images = build_survey_dataset(n_images=60, size=256, seed=77)
    clients = build_clients(
        [image.scene for image in calibration_images],
        model_ids=tuple(ALL_MODEL_IDS),
    )
    cascade = _build_cascade(
        clients,
        threshold=args.cascade_threshold,
        artifacts=artifacts,
        precision=args.detector_precision,
    )
    eval_images = build_survey_dataset(n_images=48, size=256, seed=45)

    action = args.action or "frontier"
    if action == "calibrate":
        recommended = recommend_threshold(
            cascade.detector, cascade.calibration, eval_images
        )
        print("=== cascade calibration ===")
        print(f"indicator curves   {len(cascade.calibration.curves)}")
        print(f"validation images  {len(eval_images)}")
        print(f"recommended doubt threshold {recommended:.2f}")
        print(f"configured default          {cascade.threshold:.2f}")
        if artifacts is not None:
            print(f"calibration cached under {args.artifacts}")
        return 0

    report = sweep_frontier(
        cascade.detector,
        cascade.calibration,
        cascade.scout,
        cascade.ensemble,
        eval_images,
        default_threshold=cascade.threshold,
    )
    table = render_frontier_table(report)
    print("=== cascade cost/accuracy frontier ===")
    print(table)
    out = Path(args.frontier_out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(table + "\n")
    json_out = out.with_suffix(".json")
    json_out.write_text(
        json.dumps(report.payload(), indent=2, sort_keys=True) + "\n"
    )
    print(f"frontier table -> {out}")
    print(f"frontier data  -> {json_out}")
    return 0


def _run_coordinate(args: argparse.Namespace) -> int:
    """Run (or drill) the crash-safe sharded survey coordinator.

    Without ``--drill``: plan/adopt the manifest under ``--state-dir``,
    drive every shard to COMPLETED or QUARANTINED, print the merged
    report, export the coordinator trace, and exit nonzero unless the
    merged books reconcile (:func:`repro.obs.audit.reconcile_survey`)
    and the span tree is sound.

    With ``--drill``: a self-checking chaos drill.  Phase one runs the
    same plan under a seeded :class:`~repro.coordinator.CrashSchedule`
    (every shard's first attempt is SIGKILLed at a random progress
    point; one shard is killed on *every* attempt so the budget
    quarantines it; one attempt freezes its heartbeats so the lease
    expires and the straggler is fenced).  Phase two resumes — a resume
    grants quarantined shards a fresh budget — and must complete with a
    report **byte-identical** to an undisturbed serial
    ``survey_stream`` of the same frame, without re-dispatching any
    shard that already completed.  Any violation exits nonzero.
    """
    import math

    from .coordinator import CrashSchedule, ShardState, SurveyCoordinator
    from .geo.county import make_durham_like, make_robeson_like
    from .geo.sampling import plan_survey_points
    from .obs.audit import COORDINATOR_STAGES, audit_trace, reconcile_survey
    from .obs.metrics import MetricsRegistry, use_metrics
    from .obs.trace import Tracer, use_tracer

    county = (
        make_durham_like(seed=3)
        if args.county == "durham"
        else make_robeson_like(seed=2)
    )
    shard_size = max(1, math.ceil(args.locations / max(args.shards, 1)))
    max_workers = 2 if args.workers in ("auto", 0) else max(args.workers, 1)
    state_dir = Path(args.state_dir)

    def coordinator(schedule=None, max_attempts=None):
        return SurveyCoordinator(
            state_dir=state_dir,
            counties=[county],
            n_locations=args.locations,
            seed=args.seed,
            decoder=_build_survey_decoder(county),
            shard_size=shard_size,
            max_workers=max_workers,
            lease_ttl_s=args.lease_ttl,
            max_attempts=(
                args.max_attempts if max_attempts is None else max_attempts
            ),
            keep_locations=True,
            crash_schedule=schedule,
        )

    failures: list[str] = []
    tracer = Tracer(trace_id=f"coordinate-{args.county}-seed{args.seed}")
    if args.drill:
        baseline = _build_survey_decoder(county).survey_stream(
            locations=plan_survey_points(
                [county], args.locations, seed=args.seed
            ),
            workers=1,
            keep_locations=True,
        )
        n_shards = math.ceil(args.locations / shard_size)
        schedule = CrashSchedule.seeded_kills(
            n_shards, seed=args.seed + 1, attempts=1, max_after=2
        )
        # Shard 0 dies on every attempt: the budget must quarantine it.
        for attempt in range(1, args.max_attempts + 1):
            schedule.kill(0, attempt, after_locations=1)
        if n_shards > 1:
            # One frozen straggler: only lease expiry + fencing clears it.
            schedule.freeze(1, 2, after_locations=1)
        print(
            f"drill phase 1: {len(schedule)} scripted crashes over "
            f"{n_shards} shards"
        )
        with use_metrics(MetricsRegistry()):
            crashed = coordinator(schedule=schedule).run()
        print(
            f"  completed {crashed.report.completed_locations}/"
            f"{args.locations}, requeues {crashed.requeues}, "
            f"lease expiries {crashed.lease_expiries}, "
            f"quarantined {list(crashed.quarantined)}"
        )
        if not crashed.quarantined:
            failures.append("drill: no shard was quarantined in phase 1")
        if crashed.report.completed_locations >= args.locations:
            failures.append("drill: phase 1 unexpectedly completed fully")
        done_before = len(
            crashed.manifest.in_state(ShardState.COMPLETED)
        )
        print("drill phase 2: --resume (fresh budget for quarantined)")
        with use_metrics(MetricsRegistry()), use_tracer(tracer):
            resumed = coordinator().run(resume=True)
        report = resumed.report
        traced_spawns = resumed.workers_spawned
        if resumed.workers_spawned > n_shards - done_before:
            failures.append(
                f"drill: resume re-dispatched completed shards "
                f"({resumed.workers_spawned} workers for "
                f"{n_shards - done_before} unfinished shards)"
            )
        if report.to_json() != baseline.to_json():
            failures.append(
                "drill: resumed report is NOT byte-identical to the "
                "undisturbed serial baseline"
            )
        else:
            print(
                "  resumed report byte-identical to serial baseline "
                f"({len(report.to_json())} bytes)"
            )
    else:
        with use_metrics(MetricsRegistry()), use_tracer(tracer):
            result = coordinator().run(resume=args.resume)
        report = result.report
        traced_spawns = result.workers_spawned
        print(
            f"shards: {result.shard_counts}; "
            f"workers spawned {result.workers_spawned}, "
            f"requeues {result.requeues}, "
            f"lease expiries {result.lease_expiries}"
        )

    print(f"\n=== coordinated survey of {county.name} ===")
    print(
        f"coverage       {report.coverage:.1%} "
        f"({report.completed_locations}/{report.requested_locations} "
        "locations)"
    )
    print(f"images         {report.images_classified}")
    print(f"fees           ${report.fees_usd:.3f}")
    for failed in report.failed_locations:
        print(
            f"  FAILED location {failed.index} "
            f"({failed.latitude:.4f}, {failed.longitude:.4f}): "
            f"{failed.reason}"
        )

    failures.extend(
        f"RECONCILE {line}" for line in reconcile_survey(report)
    )
    # A resume that found nothing left to do spawns no workers, so no
    # coordinate.shard span exists — that is a clean no-op, not a hole
    # in the trace.
    required_stages = (
        COORDINATOR_STAGES
        if traced_spawns
        else tuple(s for s in COORDINATOR_STAGES if s != "coordinate.shard")
    )
    failures.extend(
        f"TRACE {line}"
        for line in audit_trace(tracer, required_names=required_stages)
    )
    spans = tracer.export_jsonl(args.trace_out)
    print(f"trace          {spans} spans -> {args.trace_out}")
    if failures:
        for line in failures:
            print(f"  AUDIT {line}")
        print("coordination audit FAILED")
        return 1
    print(
        "coordination audit ok: books reconcile and the span tree is sound"
    )
    if report.coverage < args.min_coverage:
        print(
            f"coverage {report.coverage:.1%} below required "
            f"{args.min_coverage:.1%} — rerun with --resume to continue"
        )
        return 1
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    """Run a traced ensemble survey and export ``trace.jsonl``.

    Installs a recording tracer and a *fresh* metrics registry for the
    duration of the survey (so the exported delta spans exactly this
    run), writes the span tree to ``--trace-out``, and returns the
    traced survey's audited exit status.
    """
    from .obs.metrics import MetricsRegistry, use_metrics
    from .obs.trace import Tracer, use_tracer

    tracer = Tracer(trace_id=f"survey-{args.county}-seed{args.seed}")
    with use_tracer(tracer), use_metrics(MetricsRegistry()):
        status = _run_survey(args, traced=True)
    spans = tracer.export_jsonl(args.trace_out)
    print(f"trace          {spans} spans -> {args.trace_out}")
    return status


def _run_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the multi-tenant survey daemon (DESIGN.md §16).

    Speaks the NDJSON protocol over a unix socket (``--socket``) or a
    single stdin/stdout session; ``--selftest`` instead runs the
    deterministic three-job drill and exits — the CI smoke path.
    """
    from .service import (
        ServiceProtocol,
        ServiceStack,
        SurveyService,
        TenantQuota,
        run_selftest,
    )

    if args.selftest:
        return run_selftest()
    quota = TenantQuota(budget_usd=args.tenant_budget)
    stack = ServiceStack(rate_limit_per_s=args.rate_limit)
    service = SurveyService(
        stack,
        args.state_dir,
        default_quota=quota,
        max_queue_depth=args.queue_depth,
        max_attempts=args.max_attempts,
    )
    for note in service.recovered:
        print(f"recovered {note}")
    protocol = ServiceProtocol(service)

    async def serve() -> int:
        async with service:
            if args.socket:
                print(f"survey daemon listening on {args.socket}")
                await protocol.serve_unix(args.socket)
            else:
                await protocol.serve_stdio()
        return 0

    return asyncio.run(serve())


def _run_bench(args: argparse.Namespace) -> int:
    """Run the perf-marked benchmarks and refresh ``BENCH_*.json``.

    Every benchmark document is stamped with the git SHA it was
    produced at.  Rerunning at the same SHA overwrites in place;
    rerunning at a *different* SHA refuses without ``--force`` so a
    comparable measurement is never silently replaced by an
    incomparable one.  Before any overwrite the current documents are
    appended to ``benchmarks/results/bench_trajectory.jsonl``, so the
    per-commit perf trajectory survives the refresh.

    With ``--compare``, each fresh document is diffed against the last
    trajectory entry of the same benchmark: a >20% relative drop in
    any headline metric (see :data:`repro.perf.HEADLINE_METRICS`)
    exits non-zero, so CI can gate merges on perf.
    """
    import pytest

    from .perf import git_sha

    repo_root = Path(__file__).resolve().parents[2]
    only = getattr(args, "only", None)
    if only is not None:
        target = repo_root / "benchmarks" / f"test_perf_{only}.py"
        if not target.exists():
            print(f"no such benchmark: {target.name}")
            return 2
    sha = git_sha(repo_root)
    documents = []
    for path in sorted(repo_root.glob("BENCH_*.json")):
        if only is not None and path.name != f"BENCH_{only}.json":
            continue
        try:
            documents.append((path, json.loads(path.read_text())))
        except (OSError, json.JSONDecodeError):
            continue  # corrupt document: nothing comparable to protect
    stale = [
        (path, doc)
        for path, doc in documents
        if doc.get("git_sha", "unknown") not in ("unknown", sha)
    ]
    if stale and not args.force:
        for path, doc in stale:
            print(
                f"{path.name}: recorded at {doc['git_sha'][:12]}, "
                f"HEAD is {sha[:12]}"
            )
        print(
            "refusing to overwrite benchmarks from a different commit; "
            "rerun with --force to refresh them at HEAD"
        )
        return 1

    trajectory_path = (
        repo_root / "benchmarks" / "results" / "bench_trajectory.jsonl"
    )
    if documents:
        trajectory_path.parent.mkdir(parents=True, exist_ok=True)
        with trajectory_path.open("a") as handle:
            for _, doc in documents:
                handle.write(json.dumps(doc, sort_keys=False) + "\n")

    # The command-line -m overrides the "not perf" exclusion baked
    # into the project addopts.
    bench_target = (
        repo_root / "benchmarks"
        if only is None
        else repo_root / "benchmarks" / f"test_perf_{only}.py"
    )
    status = int(pytest.main(["-m", "perf", "-q", str(bench_target)]))
    if status != 0 or not args.compare:
        return status
    return _compare_against_trajectory(repo_root, trajectory_path, only=only)


def _compare_against_trajectory(
    repo_root: Path, trajectory_path: Path, only: str | None = None
) -> int:
    """Diff fresh ``BENCH_*.json`` against the last trajectory entries."""
    from .perf import compare_benchmarks

    baselines: dict[str, dict] = {}
    if trajectory_path.exists():
        for line in trajectory_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(doc, dict) and "bench" in doc:
                baselines[doc["bench"]] = doc  # last entry per bench wins

    regressed = False
    for path in sorted(repo_root.glob("BENCH_*.json")):
        if only is not None and path.name != f"BENCH_{only}.json":
            continue
        try:
            fresh = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        baseline = baselines.get(fresh.get("bench"))
        if baseline is None:
            print(f"{path.name}: no trajectory baseline yet, skipping")
            continue
        diff = compare_benchmarks(fresh, baseline)
        for entry in diff["compared"]:
            marker = (
                "REGRESSED" if entry in diff["regressions"] else "ok"
            )
            print(
                f"{path.name}: {entry['path']} "
                f"{entry['baseline']} -> {entry['fresh']} "
                f"({entry.get('relative_change', 0.0):+.1%}) {marker}"
            )
        for path_name in diff["waived"]:
            print(f"{path.name}: {path_name} waived (honesty flag set)")
        if diff["regressions"]:
            regressed = True
    if regressed:
        print("benchmark regression: a headline metric dropped >20%")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Decoding Neighborhood Environments with Large "
            "Language Models' (DSN 2025)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "bench", "cascade",
                                       "coordinate", "list", "serve",
                                       "survey", "trace"],
        help=(
            "which experiment to run ('survey' runs the decoder itself, "
            "'trace' runs it under a recording tracer and audits the "
            "books, 'coordinate' runs the crash-safe sharded "
            "coordinator, 'cascade' calibrates/sweeps the cost-aware "
            "router, 'serve' runs the multi-tenant survey daemon, "
            "'bench' runs the perf benchmarks)"
        ),
    )
    parser.add_argument(
        "action",
        nargs="?",
        choices=["calibrate", "frontier"],
        help="cascade: sub-action (default: frontier)",
    )
    parser.add_argument(
        "--scale",
        default="bench",
        choices=["smoke", "bench", "paper"],
        help="input scale (default: bench = 600 images at 640 px)",
    )
    parser.add_argument(
        "--artifacts",
        default=None,
        metavar="PATH",
        help=(
            "content-addressed artifact cache directory; reruns replay "
            "feature tensors, detector weights, and predictions from disk"
        ),
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="bench: overwrite BENCH_*.json recorded at a different commit",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help=(
            "bench: diff fresh results against the last bench_trajectory"
            ".jsonl entries and exit non-zero on a >20%% headline-metric "
            "regression"
        ),
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="NAME",
        help=(
            "bench: run only benchmarks/test_perf_<NAME>.py (e.g. "
            "'detect') and compare only its document"
        ),
    )
    survey_group = parser.add_argument_group("survey options")
    survey_group.add_argument(
        "--county",
        default="durham",
        choices=["durham", "robeson"],
        help="county to survey (default: durham)",
    )
    survey_group.add_argument(
        "--locations",
        type=int,
        default=12,
        help="number of survey locations (default: 12)",
    )
    survey_group.add_argument(
        "--seed", type=int, default=0, help="survey seed (default: 0)"
    )
    survey_group.add_argument(
        "--workers",
        type=_parse_workers,
        default=1,
        help=(
            "parallel workers for surveys and experiments; 'auto' (or 0 "
            "for surveys) = one per usable CPU (default: 1, serial)"
        ),
    )
    survey_group.add_argument(
        "--min-coverage",
        type=float,
        default=1.0,
        help="exit nonzero when coverage falls below this (default: 1.0)",
    )
    survey_group.add_argument(
        "--checkpoint",
        default=None,
        help="JSON checkpoint path; reruns resume completed locations",
    )
    survey_group.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help=(
            "use the asyncio pipelined survey engine: fetches for "
            "upcoming locations overlap LLM calls for earlier ones, "
            "with AIMD adaptive concurrency and LLM micro-batching; "
            "the report stays byte-identical to the serial engine"
        ),
    )
    survey_group.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        metavar="N",
        help=(
            "async: max locations pipelined at once and ceiling of the "
            "AIMD classify window (default: 8; 1 = strictly sequential)"
        ),
    )
    survey_group.add_argument(
        "--stream",
        action="store_true",
        help=(
            "use the streaming survey engine: locations are processed "
            "in bounded shards (O(shard-size) memory) and the report "
            "carries aggregate indicator rates instead of per-location "
            "rows"
        ),
    )
    survey_group.add_argument(
        "--shard-size",
        type=int,
        default=64,
        metavar="N",
        help="stream: max locations in flight at once (default: 64)",
    )
    survey_group.add_argument(
        "--cascade",
        action="store_true",
        help=(
            "classify with the cost-aware cascade (detector-first, "
            "LLM-on-doubt, full-ensemble last) instead of a single LLM"
        ),
    )
    survey_group.add_argument(
        "--cascade-threshold",
        type=float,
        default=None,
        metavar="DOUBT",
        help=(
            "cascade doubt tolerance in [0, 0.5]; 0 escalates every "
            "indicator to the full ensemble (default: the calibrated "
            "DEFAULT_THRESHOLD)"
        ),
    )
    survey_group.add_argument(
        "--detector-precision",
        default=None,
        choices=["float64", "float32", "int8"],
        metavar="TIER",
        help=(
            "cascade tier-0 inference tier: float64 (exact), float32 "
            "(fast, default), or int8 (quantized, fastest)"
        ),
    )
    survey_group.add_argument(
        "--frontier-out",
        default="frontier_cascade.md",
        metavar="PATH",
        help=(
            "cascade frontier: output table path; the JSON payload is "
            "written next to it (default: frontier_cascade.md)"
        ),
    )
    survey_group.add_argument(
        "--gsv-failure-rate",
        type=float,
        default=0.0,
        help="injected transient-failure probability (default: 0)",
    )
    survey_group.add_argument(
        "--daily-quota",
        type=int,
        default=None,
        help="simulated GSV daily image quota (default: unlimited)",
    )
    survey_group.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help=(
            "write the survey's observability-counter delta (the same "
            "dict repro.obs.audit reconciles) to PATH as JSON"
        ),
    )
    survey_group.add_argument(
        "--trace-out",
        default="trace.jsonl",
        metavar="PATH",
        help="trace: span export path (default: trace.jsonl)",
    )
    coord_group = parser.add_argument_group("coordinate options")
    coord_group.add_argument(
        "--state-dir",
        default=".coord_state",
        metavar="PATH",
        help=(
            "coordinate: durable state directory (manifest, shard "
            "checkpoints, results; default: .coord_state)"
        ),
    )
    coord_group.add_argument(
        "--shards",
        type=int,
        default=8,
        metavar="N",
        help="coordinate: split the frame into N shards (default: 8)",
    )
    coord_group.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "coordinate: heartbeat silence tolerated before a worker "
            "is fenced and its shard re-dispatched (default: 30)"
        ),
    )
    coord_group.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help=(
            "coordinate: dispatches per shard before quarantine "
            "(default: 3)"
        ),
    )
    coord_group.add_argument(
        "--resume",
        action="store_true",
        help=(
            "coordinate: adopt the existing manifest and resume "
            "(quarantined shards get a fresh attempt budget)"
        ),
    )
    coord_group.add_argument(
        "--drill",
        action="store_true",
        help=(
            "coordinate: run the self-checking chaos drill (scripted "
            "SIGKILLs + a frozen straggler, then resume; exits nonzero "
            "unless the resumed report is byte-identical to a serial "
            "baseline and the books reconcile)"
        ),
    )
    serve_group = parser.add_argument_group("serve options")
    serve_group.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help=(
            "serve: accept NDJSON sessions on this unix socket "
            "(default: one session over stdin/stdout)"
        ),
    )
    serve_group.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        metavar="N",
        help="serve: bounded admission queue depth (default: 16)",
    )
    serve_group.add_argument(
        "--tenant-budget",
        type=float,
        default=None,
        metavar="USD",
        help=(
            "serve: default per-tenant imagery-fee budget "
            "(default: unmetered)"
        ),
    )
    serve_group.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="PER_S",
        help="serve: shared LLM token-bucket rate (default: unlimited)",
    )
    serve_group.add_argument(
        "--selftest",
        action="store_true",
        help=(
            "serve: run the deterministic three-job service drill "
            "against a temporary state directory and exit (CI smoke)"
        ),
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (description, _) in sorted(EXPERIMENTS.items()):
            print(f"  {name:12s} {description}")
        return 0
    if args.experiment == "survey":
        return _run_survey(args)
    if args.experiment == "trace":
        return _run_trace(args)
    if args.experiment == "coordinate":
        return _run_coordinate(args)
    if args.experiment == "cascade":
        return _run_cascade(args)
    if args.experiment == "serve":
        return _run_serve(args)
    if args.experiment == "bench":
        return _run_bench(args)

    artifacts = None
    if args.artifacts:
        from .artifacts import ArtifactCache

        artifacts = ArtifactCache(args.artifacts)
    suite = ExperimentSuite(
        config=_config_for(args.scale),
        workers=args.workers,
        artifacts=artifacts,
    )

    if args.experiment == "all":
        # Paper experiments fan out concurrently over shared warmed
        # inputs; the extensions run serially afterwards.
        run = suite.run_all(workers=args.workers)
        for name, results in run.results.items():
            print(f"\n=== {EXPERIMENTS[name][0]} (scale={args.scale}) ===")
            for result in results:
                print(result.render())
        for name in sorted(set(EXPERIMENTS) - set(PAPER_RUNNERS)):
            description, runner = EXPERIMENTS[name]
            print(f"\n=== {description} (scale={args.scale}) ===")
            started = time.time()
            outcome = runner(suite)
            results = outcome if isinstance(outcome, list) else [outcome]
            for result in results:
                print(result.render())
            print(f"[{time.time() - started:.1f}s]")
        print(f"\n{run.render_summary()}")
        return 0

    description, runner = EXPERIMENTS[args.experiment]
    print(f"\n=== {description} (scale={args.scale}) ===")
    started = time.time()
    outcome = runner(suite)
    results = outcome if isinstance(outcome, list) else [outcome]
    for result in results:
        print(result.render())
    print(f"[{time.time() - started:.1f}s]")
    if artifacts is not None:
        stats = suite.cache_stats()
        print(
            f"artifact cache: {stats['hits']} hits, "
            f"{stats['misses']} misses"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
