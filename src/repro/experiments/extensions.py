"""Extension experiments: the paper's §V limitations, made measurable.

The paper's discussion section names four concerns it leaves
unquantified.  Each gets a runnable experiment here:

* **label noise** — "human error in labeling training data could
  impact the reliability of the model": retrain the detector with an
  annotator-error model (box jitter, misses, mislabels) and measure
  the degradation.
* **few-shot mitigation** — "few-shot learning could partially
  mitigate this [language] gap": re-run the language sweep with
  exemplar-grounded prompts.
* **multi-frame fusion** — "we will incorporate multiple consecutive
  images in different directions to improve performance": classify
  all four headings of a location and fuse by union, measuring the
  recall gain on occludable indicators.
* **cost accounting** — "practical barriers such as computational
  costs and API latency": tally tokens and image fees per approach.
"""

from __future__ import annotations

import numpy as np

from ..core.classifier import ClassifierConfig, LLMIndicatorClassifier
from ..core.indicators import ALL_INDICATORS, Indicator
from ..core.metrics import ClassificationReport
from ..detect.evaluate import evaluate_detector
from ..detect.train import train_detector
from ..gsv.dataset import LabeledImage
from ..gsv.labelme import perturb_annotations
from ..llm.language import Language
from ..llm.paper_targets import GEMINI_15_PRO, VOTING_MODEL_IDS
from .results import ExperimentResult
from .runner import ExperimentSuite


def run_label_noise(
    suite: ExperimentSuite,
    jitters: tuple[float, ...] = (0.0, 0.01, 0.03),
    miss_rate: float = 0.05,
    mislabel_rate: float = 0.02,
    seed: int = 0,
) -> ExperimentResult:
    """Detector accuracy under an annotator-error model (§V, first
    limitation)."""
    result = ExperimentResult(
        experiment_id="Ext. A",
        title="Detector F1 under annotation noise",
        columns=["condition", "f1", "map50"],
    )
    baseline = evaluate_detector(suite.trained_detector, suite.splits.test)
    result.add_row(
        condition="clean labels", f1=baseline.mean_f1, map50=baseline.map50
    )

    rng = np.random.default_rng(seed)
    for jitter in jitters:
        if jitter == 0.0:
            continue
        noisy_train = []
        for image in suite.splits.train:
            noisy = perturb_annotations(
                list(image.annotations),
                rng,
                jitter=jitter,
                miss_rate=miss_rate,
                mislabel_rate=mislabel_rate,
            )
            # Noisy labels void the scene-derived occupancy; fall back
            # to bbox footprints, as real mislabeled data would.
            noisy_train.append(
                LabeledImage(
                    image_id=f"{image.image_id}_noisy{jitter}",
                    scene=image.scene,
                    annotations=tuple(noisy),
                    size=image.size,
                    occupancy=tuple(
                        (ind, box, (box,)) for ind, box in noisy
                    ),
                )
            )
        model = train_detector(
            noisy_train,
            model_config=suite.config.detector_model,
            train_config=suite.config.detector_train,
        ).model
        report = evaluate_detector(model, suite.splits.test)
        result.add_row(
            condition=(
                f"jitter={jitter}, miss={miss_rate}, "
                f"mislabel={mislabel_rate}"
            ),
            f1=report.mean_f1,
            map50=report.map50,
        )
    result.notes.append(
        "§V: annotation error degrades the supervised baseline; the "
        "LLM pipeline needs no labels at all"
    )
    return result


def run_few_shot_languages(
    suite: ExperimentSuite,
    n_exemplars: int = 3,
) -> ExperimentResult:
    """Few-shot exemplars vs the language gap (§V mitigation)."""
    calibration = suite.clients  # ensure clients exist
    exemplars = tuple(suite.dataset.images[:n_exemplars])
    eval_images = suite.dataset.images[n_exemplars:]
    truths = [image.presence for image in eval_images]

    result = ExperimentResult(
        experiment_id="Ext. B",
        title=f"{n_exemplars}-shot prompting vs the language gap (Gemini)",
        columns=["language", "zero_shot_recall", "few_shot_recall"],
    )
    for language in (
        Language.ENGLISH,
        Language.BENGALI,
        Language.SPANISH,
        Language.CHINESE,
    ):
        zero = LLMIndicatorClassifier(
            calibration[GEMINI_15_PRO],
            ClassifierConfig(language=language),
        ).predictions(eval_images)
        few = LLMIndicatorClassifier(
            calibration[GEMINI_15_PRO],
            ClassifierConfig(
                language=language, few_shot_exemplars=exemplars
            ),
        ).predictions(eval_images)
        result.add_row(
            language=language.value,
            zero_shot_recall=ClassificationReport.from_predictions(
                truths, zero
            ).mean_recall,
            few_shot_recall=ClassificationReport.from_predictions(
                truths, few
            ).mean_recall,
        )
    result.notes.append(
        "§V: few-shot grounding partially closes the non-English gap "
        "without fully reaching English performance"
    )
    return result


def run_multi_frame(suite: ExperimentSuite) -> ExperimentResult:
    """Single-frame vs four-heading union recall (§V future work).

    Groups the survey's images by location (four consecutive captures
    share one sample point) and compares per-location recall when
    using one heading vs the union of all four.
    """
    predictions = suite.model_predictions(GEMINI_15_PRO)
    images = suite.dataset.images
    n_locations = len(images) // 4

    result = ExperimentResult(
        experiment_id="Ext. C",
        title="Single-frame vs multi-frame (4-heading union) recall",
        columns=["indicator", "single_frame", "four_frame_union"],
    )
    for indicator in ALL_INDICATORS:
        single_hits = 0
        union_hits = 0
        total = 0
        for location in range(n_locations):
            group = range(location * 4, location * 4 + 4)
            # Location-level ground truth: the indicator exists at the
            # location (visible from at least one heading).  Both
            # strategies are scored against this same denominator, so
            # the union strictly dominates — the question is by how
            # much, per indicator.
            if not any(images[i].presence[indicator] for i in group):
                continue
            total += 1
            first = location * 4
            if predictions[first][indicator]:
                single_hits += 1
            if any(predictions[i][indicator] for i in group):
                union_hits += 1
        result.add_row(
            indicator=indicator.display_name,
            single_frame=single_hits / total if total else float("nan"),
            four_frame_union=union_hits / total if total else float("nan"),
        )
    result.notes.append(
        "§V: fusing the four headings recovers indicators partially "
        "occluded in single frames"
    )
    return result


def run_label_efficiency(
    suite: ExperimentSuite,
    fractions: tuple[float, ...] = (0.1, 0.25, 0.5, 1.0),
) -> ExperimentResult:
    """Detector F1 vs. number of labeled training images.

    The paper's central trade-off is annotation effort: the supervised
    model needs 1,200 labeled images, the LLMs none.  This experiment
    draws the detector's learning curve and marks where it overtakes
    the zero-label LLM ensemble — the break-even annotation budget a
    practitioner actually cares about.
    """
    if not fractions or any(not 0.0 < f <= 1.0 for f in fractions):
        raise ValueError("fractions must lie in (0, 1]")
    train = suite.splits.train
    test = suite.splits.test

    # Zero-label reference: the best single LLM's image-level F1.
    predictions = suite.model_predictions(GEMINI_15_PRO)
    llm_f1 = ClassificationReport.from_predictions(
        suite.truths, predictions
    ).mean_f1

    result = ExperimentResult(
        experiment_id="Ext. G",
        title="Detector F1 vs labeled-image budget",
        columns=["labeled_images", "detector_f1", "llm_f1_zero_labels"],
    )
    for fraction in sorted(fractions):
        subset = train[: max(8, int(len(train) * fraction))]
        model = train_detector(
            subset,
            model_config=suite.config.detector_model,
            train_config=suite.config.detector_train,
        ).model
        report = evaluate_detector(model, test)
        result.add_row(
            labeled_images=len(subset),
            detector_f1=report.mean_f1,
            llm_f1_zero_labels=llm_f1,
        )
    result.notes.append(
        "the LLM line is flat at zero annotation cost; the detector "
        "crosses it once enough labels are available"
    )
    return result


def run_weather_robustness(
    suite: ExperimentSuite,
    severity: float = 0.5,
) -> ExperimentResult:
    """Detector F1 under fog / rain / dusk (weather analog of Fig. 3)."""
    from ..scene.weather import CONDITIONS, apply_condition

    model = suite.trained_detector
    result = ExperimentResult(
        experiment_id="Ext. H",
        title=f"Detector F1 under weather (severity {severity})",
        columns=["condition", "f1", "map50"],
    )
    clean = evaluate_detector(model, suite.splits.test)
    result.add_row(condition="clear", f1=clean.mean_f1, map50=clean.map50)
    for condition in sorted(CONDITIONS):
        report = evaluate_detector(
            model,
            suite.splits.test,
            image_transform=lambda px, c=condition: apply_condition(
                px, c, severity
            ),
        )
        result.add_row(
            condition=condition, f1=report.mean_f1, map50=report.map50
        )
    result.notes.append(
        "weather shifts the color/contrast statistics the hand-crafted "
        "features rely on; fog (global contrast loss) hurts most"
    )
    return result


def run_correlation_ablation(suite: ExperimentSuite) -> ExperimentResult:
    """Ablate the shared-evidence design decision (DESIGN.md §4.1).

    The simulators share one per-scene evidence channel so cross-model
    errors correlate; this is the mechanism behind the paper's finding
    that majority voting cannot rescue single-lane-road accuracy.
    Here we rebuild the voting ensemble with *independent* perception
    noise per model and compare: with independent errors the vote
    should recover noticeably more accuracy than with shared errors.
    """
    from ..core.voting import vote_predictions
    from ..llm.models import SimulatedVLM
    from ..llm.perception import EvidenceModel
    from ..llm.profiles import calibrate_profiles

    calibration = [
        image.scene
        for image in _calibration_images(suite)
    ]
    images = suite.dataset.images
    truths = [image.presence for image in images]

    result = ExperimentResult(
        experiment_id="Ext. E",
        title="Majority voting vs error correlation",
        columns=["error_structure", "vote_accuracy", "SR_accuracy"],
    )
    for label, seeds in (
        ("shared perception (paper-like)", {m: 0 for m in VOTING_MODEL_IDS}),
        (
            "independent perception",
            {m: 1000 + i for i, m in enumerate(VOTING_MODEL_IDS)},
        ),
    ):
        per_model = {}
        for model_id in VOTING_MODEL_IDS:
            evidence = EvidenceModel(seed=seeds[model_id])
            profiles = calibrate_profiles(
                calibration, evidence, model_ids=(model_id,)
            )
            client = SimulatedVLM(profiles[model_id], evidence)
            per_model[model_id] = LLMIndicatorClassifier(
                client
            ).predictions(images)
        voted = vote_predictions(per_model)
        report = ClassificationReport.from_predictions(truths, voted)
        result.add_row(
            error_structure=label,
            vote_accuracy=report.mean_accuracy,
            SR_accuracy=report.counts[
                Indicator.SINGLE_LANE_ROAD
            ].accuracy,
        )
    result.notes.append(
        "decorrelating the per-model noise barely moves the vote: the "
        "single-lane error is driven by shared scene *content* (the "
        "partial-road confuser), which no amount of model diversity "
        "can wash out — the strongest form of the paper's finding"
    )
    return result


def _calibration_images(suite: ExperimentSuite) -> list[LabeledImage]:
    from ..gsv.dataset import build_survey_dataset

    calibration = build_survey_dataset(
        n_images=suite.config.n_calibration_images,
        size=suite.config.image_size,
        seed=suite.config.calibration_seed,
    )
    return calibration.images


def run_cost_accounting(suite: ExperimentSuite) -> ExperimentResult:
    """Tokens and fees per decoding approach (§V practical barriers)."""
    result = ExperimentResult(
        experiment_id="Ext. D",
        title="Cost accounting per approach",
        columns=["approach", "requests", "tokens", "notes"],
    )
    n = len(suite.dataset.images)
    single = suite.clients[GEMINI_15_PRO].stats
    per_request_tokens = (
        (single.prompt_tokens + single.completion_tokens)
        / max(single.requests, 1)
    )
    result.add_row(
        approach="single LLM (Gemini)",
        requests=n,
        tokens=int(per_request_tokens * n),
        notes="one request per image",
    )
    result.add_row(
        approach="majority vote (3 LLMs)",
        requests=3 * n,
        tokens=int(per_request_tokens * 3 * n),
        notes="3x cost and latency for ~4 accuracy points",
    )
    result.add_row(
        approach="trained detector",
        requests=0,
        tokens=0,
        notes="needs ~1,200 labeled images + training compute",
    )
    return result


def run_fault_drill(
    suite: ExperimentSuite,
    n_locations: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """Survey resilience under scripted outages (Ext. I).

    Exercises the :mod:`repro.resilience` layer end-to-end: a clean
    survey, a transient GSV burst absorbed by retry, an LLM ensemble
    member hard-down (voting degrades to the surviving quorum behind a
    circuit breaker), and a quota cliff that yields an honest partial
    result instead of an aborted survey.
    """
    from ..core.pipeline import NeighborhoodDecoder
    from ..core.voting import VotingEnsemble
    from ..geo.county import make_durham_like
    from ..gsv.api import StreetViewClient, TransientNetworkError
    from ..llm.errors import ServerError
    from ..resilience import (
        CircuitBreaker,
        FaultSchedule,
        FaultyChatClient,
        RetryPolicy,
        VirtualClock,
    )

    result = ExperimentResult(
        experiment_id="Ext. I",
        title="Fault-tolerant survey drill",
        columns=[
            "scenario", "coverage", "failed", "degraded", "retries", "fees_usd"
        ],
    )
    county = make_durham_like(seed=3)

    def decoder_for(street_view, ensemble=None):
        clock = VirtualClock()
        predictor = (
            {"ensemble": ensemble}
            if ensemble is not None
            else {
                "classifier": LLMIndicatorClassifier(
                    suite.clients[GEMINI_15_PRO]
                )
            }
        )
        return NeighborhoodDecoder(
            street_view=street_view,
            retry_policy=RetryPolicy(max_attempts=4, base_delay_s=0.2),
            gsv_breaker=CircuitBreaker(
                name="gsv", failure_threshold=8, clock=clock
            ),
            clock=clock,
            **predictor,
        )

    def record(scenario, report):
        result.add_row(
            scenario=scenario,
            coverage=report.coverage,
            failed=len(report.failed_locations),
            degraded=report.degraded_votes,
            retries=report.retry_stats.retries,
            fees_usd=report.fees_usd,
        )

    # Clean run: every location completes, no fault handling needed.
    clean = decoder_for(StreetViewClient(counties=[county], api_key="drill"))
    record("no faults", clean.survey(county, n_locations, seed=seed))

    # Transient GSV burst: retries absorb it, full coverage.
    burst_client = StreetViewClient(
        counties=[county],
        api_key="drill",
        fault_schedule=FaultSchedule().burst(
            TransientNetworkError("injected outage"), start=3, length=2
        ),
    )
    record("GSV burst", decoder_for(burst_client).survey(
        county, n_locations, seed=seed
    ))

    # One voting member hard-down: quorum degrades, survey completes.
    down = FaultSchedule().after(ServerError("model offline"), start=1)
    members = {}
    breakers = {}
    for model_id in VOTING_MODEL_IDS:
        client = suite.clients[model_id]
        if model_id == VOTING_MODEL_IDS[-1]:
            client = FaultyChatClient(client, down)
            breakers[model_id] = CircuitBreaker(
                name=model_id, failure_threshold=2, clock=VirtualClock()
            )
        members[model_id] = LLMIndicatorClassifier(
            client, ClassifierConfig(max_attempts=2)
        )
    ensemble = VotingEnsemble(members, breakers=breakers)
    record("1 LLM down", decoder_for(
        StreetViewClient(counties=[county], api_key="drill"),
        ensemble=ensemble,
    ).survey(county, n_locations, seed=seed))

    # Quota cliff at 80% of the imagery budget: partial coverage,
    # failed locations reported instead of an aborted survey.
    quota_client = StreetViewClient(
        counties=[county],
        api_key="drill",
        daily_quota=int(0.8 * n_locations) * 4,
    )
    record("quota cliff", decoder_for(quota_client).survey(
        county, n_locations, seed=seed
    ))
    result.notes.append(
        "coverage < 1.0 rows are recoverable: rerunning with a "
        "checkpoint resumes after the last completed location"
    )
    return result
