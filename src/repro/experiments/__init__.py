"""Experiment harness: regenerate every table and figure of the paper."""

from .config import ExperimentConfig, paper_config, smoke_config
from .extensions import (
    run_correlation_ablation,
    run_cost_accounting,
    run_few_shot_languages,
    run_label_noise,
    run_multi_frame,
)
from .prior_work import (
    ALIREZAEI_F1,
    NGUYEN_ACCURACY,
    prior_work_comparison,
)
from .results import ExperimentResult, ratio
from .runner import PAPER_RUNNERS, PAPER_TABLE1, ExperimentSuite, SuiteRun

__all__ = [
    "ExperimentConfig",
    "paper_config",
    "smoke_config",
    "run_correlation_ablation",
    "run_cost_accounting",
    "run_few_shot_languages",
    "run_label_noise",
    "run_multi_frame",
    "ALIREZAEI_F1",
    "NGUYEN_ACCURACY",
    "prior_work_comparison",
    "ExperimentResult",
    "ratio",
    "PAPER_RUNNERS",
    "PAPER_TABLE1",
    "ExperimentSuite",
    "SuiteRun",
]
