"""The experiment suite: one runner per paper table/figure.

``ExperimentSuite`` lazily builds and caches the shared inputs — the
survey dataset, its splits, the calibrated LLM clients, and the
trained detector — then exposes one method per published result:

=================  ===========================================
``run_table1``     detector P/R/F1/mAP50 per class
``run_fig2``       augmentation ablation
``run_fig3``       Gaussian-noise SNR sweep
``run_table2``     example prompt/response matrix
``run_fig4``       parallel vs sequential prompting
``run_fig5``       per-LLM accuracy + majority voting
``run_tables3to6`` per-LLM per-class confusion tables
``run_fig6``       prompt-language sweep
``run_param``      temperature / top-p sweep
``run_prior``      prior-work comparison
=================  ===========================================

Each returns an :class:`~repro.experiments.results.ExperimentResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.classifier import ClassifierConfig, LLMIndicatorClassifier
from ..core.indicators import ALL_INDICATORS, Indicator
from ..core.languages import PAPER_QUESTION_ORDER
from ..core.metrics import ClassificationReport, accuracy_by_indicator
from ..core.prompts import PromptStyle, build_single_prompt
from ..core.voting import vote_predictions
from ..detect.evaluate import EvaluationReport, evaluate_detector
from ..detect.train import train_detector
from ..gsv.dataset import (
    DatasetSplits,
    SurveyDataset,
    augment_training_set,
    build_survey_dataset,
)
from ..llm.base import ImageAttachment
from ..llm.language import Language
from ..llm.models import SimulatedVLM
from ..llm.paper_targets import (
    ALL_MODEL_IDS,
    DISPLAY_NAMES,
    GEMINI_15_PRO,
    GPT_4O_MINI,
    PAPER_LANGUAGE_RECALL,
    PAPER_LLM_METRICS,
    PAPER_MODEL_ACCURACY,
    PAPER_PROMPT_STYLE_RECALL,
    PAPER_TEMPERATURE_F1,
    PAPER_TOP_P_F1,
    PAPER_VOTING_ACCURACY,
    VOTING_MODEL_IDS,
)
from ..llm.registry import build_clients
from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from ..scene.noise import PAPER_SNR_LEVELS_DB, add_gaussian_noise
from .config import ExperimentConfig, paper_config
from .prior_work import prior_work_comparison
from .results import ExperimentResult

#: Paper Table I reference values (precision, recall, f1, mAP50).
PAPER_TABLE1 = {
    Indicator.STREETLIGHT: (0.993, 0.995, 0.994, 0.995),
    Indicator.SIDEWALK: (1.0, 0.890, 0.942, 0.989),
    Indicator.SINGLE_LANE_ROAD: (0.938, 0.871, 0.903, 0.980),
    Indicator.MULTILANE_ROAD: (0.949, 1.0, 0.974, 0.994),
    Indicator.POWERLINE: (1.0, 0.981, 0.990, 0.995),
    Indicator.APARTMENT: (0.954, 1.0, 0.977, 0.995),
}


@dataclass
class ExperimentSuite:
    """Caches shared inputs and runs every experiment.

    ``workers`` parallelizes the CPU-bound detector paths (tensor
    building, evaluation) across processes and, via :meth:`run_all`,
    runs independent experiments concurrently.  ``artifacts`` is an
    optional :class:`~repro.artifacts.ArtifactCache`: feature tensors,
    trained weights, and per-image detector predictions persist there,
    making a rerun of the suite near-instant.
    """

    config: ExperimentConfig = field(default_factory=paper_config)
    workers: int | str = 1
    artifacts: object | None = None
    _dataset: SurveyDataset | None = None
    _splits: DatasetSplits | None = None
    _clients: dict[str, SimulatedVLM] | None = None
    _detector_report: EvaluationReport | None = None
    _trained_model: object | None = None
    _predictions: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # shared inputs

    @property
    def dataset(self) -> SurveyDataset:
        if self._dataset is None:
            self._dataset = build_survey_dataset(
                n_images=self.config.n_images,
                size=self.config.image_size,
                seed=self.config.dataset_seed,
            )
        return self._dataset

    @property
    def splits(self) -> DatasetSplits:
        if self._splits is None:
            self._splits = self.dataset.split(seed=self.config.split_seed)
        return self._splits

    @property
    def clients(self) -> dict[str, SimulatedVLM]:
        if self._clients is None:
            calibration = build_survey_dataset(
                n_images=self.config.n_calibration_images,
                size=self.config.image_size,
                seed=self.config.calibration_seed,
            )
            self._clients = build_clients(
                [image.scene for image in calibration],
                evidence_seed=self.config.evidence_seed,
            )
        return self._clients

    @property
    def trained_detector(self):
        if self._trained_model is None:
            result = train_detector(
                self.splits.train,
                model_config=self.config.detector_model,
                train_config=self.config.detector_train,
                workers=self.workers,
                cache=self.artifacts,
            )
            self._trained_model = result.model
        return self._trained_model

    def cache_stats(self) -> dict:
        """Artifact-cache hit/miss counters (empty when caching is off)."""
        if self.artifacts is None:
            return {}
        return self.artifacts.stats()

    @property
    def truths(self):
        return [image.presence for image in self.dataset]

    def model_predictions(
        self,
        model_id: str,
        style: PromptStyle = PromptStyle.PARALLEL,
        language: Language = Language.ENGLISH,
        temperature: float = 1.0,
        top_p: float = 0.95,
    ):
        """Cached LLM predictions over the full dataset."""
        key = (model_id, style, language, temperature, top_p)
        if key not in self._predictions:
            classifier = LLMIndicatorClassifier(
                self.clients[model_id],
                ClassifierConfig(
                    style=style,
                    language=language,
                    temperature=temperature,
                    top_p=top_p,
                ),
            )
            self._predictions[key] = classifier.predictions(
                self.dataset.images
            )
        return self._predictions[key]

    # ------------------------------------------------------------------
    # Table I

    def run_table1(self) -> ExperimentResult:
        """Detector per-class metrics on the held-out test split."""
        if self._detector_report is None:
            self._detector_report = evaluate_detector(
                self.trained_detector,
                self.splits.test,
                workers=self.workers,
                cache=self.artifacts,
            )
        report = self._detector_report
        result = ExperimentResult(
            experiment_id="Table I",
            title="YOLO-analog detector accuracy",
            columns=[
                "label", "precision", "recall", "f1", "map50",
                "paper_f1", "paper_map50",
            ],
        )
        for indicator in ALL_INDICATORS:
            metrics = report.per_class[indicator]
            _, _, paper_f1, paper_map = PAPER_TABLE1[indicator]
            result.add_row(
                label=indicator.display_name,
                precision=metrics.precision,
                recall=metrics.recall,
                f1=metrics.f1,
                map50=metrics.ap50,
                paper_f1=paper_f1,
                paper_map50=paper_map,
            )
        result.add_row(
            label="Average",
            precision=report.mean_precision,
            recall=report.mean_recall,
            f1=report.mean_f1,
            map50=report.map50,
            paper_f1=0.963,
            paper_map50=0.991,
        )
        return result

    # ------------------------------------------------------------------
    # Fig. 2

    def run_fig2(self) -> ExperimentResult:
        """Augmentation ablation: baseline vs +rotations vs +crops.

        With an artifact cache attached, the sweep only pays for what
        is new: the augmented training sets contain every base image,
        whose feature tensors are already cached from the baseline
        run, so only the rotated/cropped copies are extracted.
        """
        baseline = evaluate_detector(
            self.trained_detector,
            self.splits.test,
            workers=self.workers,
            cache=self.artifacts,
        )

        rotated = augment_training_set(self.splits.train, add_crops=False)
        rotated_model = train_detector(
            rotated,
            model_config=self.config.detector_model,
            train_config=self.config.detector_train,
            workers=self.workers,
            cache=self.artifacts,
        ).model
        rotated_report = evaluate_detector(
            rotated_model,
            self.splits.test,
            workers=self.workers,
            cache=self.artifacts,
        )

        cropped = augment_training_set(
            self.splits.train, add_crops=True, seed=7
        )
        cropped_model = train_detector(
            cropped,
            model_config=self.config.detector_model,
            train_config=self.config.detector_train,
            workers=self.workers,
            cache=self.artifacts,
        ).model
        cropped_report = evaluate_detector(
            cropped_model,
            self.splits.test,
            workers=self.workers,
            cache=self.artifacts,
        )

        result = ExperimentResult(
            experiment_id="Fig. 2",
            title="Accuracy with augmentation (per-class F1)",
            columns=["label", "baseline", "rotations", "rot_plus_crop"],
        )
        for indicator in ALL_INDICATORS:
            result.add_row(
                label=indicator.display_name,
                baseline=baseline.per_class[indicator].f1,
                rotations=rotated_report.per_class[indicator].f1,
                rot_plus_crop=cropped_report.per_class[indicator].f1,
            )
        result.add_row(
            label="Average",
            baseline=baseline.mean_f1,
            rotations=rotated_report.mean_f1,
            rot_plus_crop=cropped_report.mean_f1,
        )
        result.notes.append(
            "paper: augmentation does not improve the average and hurts "
            "direction-bound classes (streetlight, apartment)"
        )
        return result

    # ------------------------------------------------------------------
    # Fig. 3

    def run_fig3(self) -> ExperimentResult:
        """Gaussian-noise robustness across SNR levels."""
        model = self.trained_detector
        result = ExperimentResult(
            experiment_id="Fig. 3",
            title="Impact of SNR on detector F1",
            columns=["snr_db", "f1", "map50"],
        )
        for snr_db in PAPER_SNR_LEVELS_DB:
            rng = np.random.default_rng(1000 + snr_db)
            report = evaluate_detector(
                model,
                self.splits.test,
                image_transform=lambda px, s=snr_db, r=rng: add_gaussian_noise(
                    px, s, r
                ),
            )
            result.add_row(snr_db=snr_db, f1=report.mean_f1, map50=report.map50)
        result.notes.append(
            "paper: >0.90 at SNR 25-30 dB, dropping to ≈0.60 at SNR 5 dB"
        )
        return result

    # ------------------------------------------------------------------
    # Table II

    def run_table2(self, image_index: int = 0) -> ExperimentResult:
        """Example per-question responses from all four models."""
        image = self.dataset[image_index]
        attachment = ImageAttachment(scene=image.scene)
        result = ExperimentResult(
            experiment_id="Table II",
            title=f"Example responses ({image.image_id})",
            columns=["question"] + [DISPLAY_NAMES[m] for m in ALL_MODEL_IDS],
        )
        for indicator in PAPER_QUESTION_ORDER:
            prompt = build_single_prompt(indicator)
            row: dict[str, object] = {"question": indicator.display_name}
            for model_id in ALL_MODEL_IDS:
                row[DISPLAY_NAMES[model_id]] = self.clients[model_id].ask(
                    prompt, attachment
                )
            result.add_row(**row)
        truth = ", ".join(
            ind.abbreviation
            for ind in ALL_INDICATORS
            if image.presence[ind]
        )
        result.notes.append(f"ground truth: {truth or 'none'}")
        return result

    # ------------------------------------------------------------------
    # Fig. 4

    def run_fig4(self) -> ExperimentResult:
        """Parallel vs sequential prompting (average recall)."""
        result = ExperimentResult(
            experiment_id="Fig. 4",
            title="Recall under parallel vs sequential prompts",
            columns=["model", "parallel", "sequential", "paper_parallel",
                     "paper_sequential"],
        )
        for model_id in (GEMINI_15_PRO, GPT_4O_MINI):
            recalls = {}
            for style in (PromptStyle.PARALLEL, PromptStyle.SEQUENTIAL):
                predictions = self.model_predictions(model_id, style=style)
                report = ClassificationReport.from_predictions(
                    self.truths, predictions
                )
                recalls[style] = report.mean_recall
            paper = PAPER_PROMPT_STYLE_RECALL[model_id]
            result.add_row(
                model=DISPLAY_NAMES[model_id],
                parallel=recalls[PromptStyle.PARALLEL],
                sequential=recalls[PromptStyle.SEQUENTIAL],
                paper_parallel=paper["parallel"],
                paper_sequential=paper["sequential"],
            )
        return result

    # ------------------------------------------------------------------
    # Fig. 5 + §IV-C2

    def run_fig5(self) -> ExperimentResult:
        """Per-LLM average accuracy and the top-3 majority vote."""
        result = ExperimentResult(
            experiment_id="Fig. 5",
            title="Accuracy of LLMs and majority voting",
            columns=["model"]
            + [ind.abbreviation for ind in ALL_INDICATORS]
            + ["average", "paper_average"],
        )
        per_model = {}
        for model_id in ALL_MODEL_IDS:
            predictions = self.model_predictions(model_id)
            per_model[model_id] = predictions
            accuracy = accuracy_by_indicator(self.truths, predictions)
            row: dict[str, object] = {"model": DISPLAY_NAMES[model_id]}
            for indicator in ALL_INDICATORS:
                row[indicator.abbreviation] = accuracy[indicator]
            row["average"] = float(
                np.mean([accuracy[ind] for ind in ALL_INDICATORS])
            )
            row["paper_average"] = PAPER_MODEL_ACCURACY[model_id]
            result.add_row(**row)

        voted = vote_predictions(
            {m: per_model[m] for m in VOTING_MODEL_IDS}
        )
        accuracy = accuracy_by_indicator(self.truths, voted)
        row = {"model": "Majority vote (top 3)"}
        for indicator in ALL_INDICATORS:
            row[indicator.abbreviation] = accuracy[indicator]
        row["average"] = float(
            np.mean([accuracy[ind] for ind in ALL_INDICATORS])
        )
        row["paper_average"] = 0.885
        result.add_row(**row)
        result.notes.append(
            "paper voting per-class: "
            + ", ".join(
                f"{ind.abbreviation}={PAPER_VOTING_ACCURACY[ind]:.3f}"
                for ind in ALL_INDICATORS
            )
        )
        return result

    # ------------------------------------------------------------------
    # Tables III-VI

    def run_tables3to6(self) -> dict[str, ExperimentResult]:
        """Per-class confusion tables for each model."""
        out = {}
        for model_id in ALL_MODEL_IDS:
            predictions = self.model_predictions(model_id)
            report = ClassificationReport.from_predictions(
                self.truths, predictions
            )
            result = ExperimentResult(
                experiment_id=f"Table {_table_number(model_id)}",
                title=f"Accuracy of {DISPLAY_NAMES[model_id]}",
                columns=[
                    "label", "precision", "recall", "f1", "accuracy",
                    "paper_precision", "paper_recall",
                ],
            )
            for indicator in ALL_INDICATORS:
                counts = report.counts[indicator]
                target = PAPER_LLM_METRICS[model_id][indicator]
                result.add_row(
                    label=indicator.display_name,
                    precision=counts.precision,
                    recall=counts.recall,
                    f1=counts.f1,
                    accuracy=counts.accuracy,
                    paper_precision=target.precision,
                    paper_recall=target.recall,
                )
            result.add_row(
                label="Average",
                precision=report.mean_precision,
                recall=report.mean_recall,
                f1=report.mean_f1,
                accuracy=report.mean_accuracy,
                paper_precision=float(
                    np.mean(
                        [
                            PAPER_LLM_METRICS[model_id][i].precision
                            for i in ALL_INDICATORS
                        ]
                    )
                ),
                paper_recall=float(
                    np.mean(
                        [
                            PAPER_LLM_METRICS[model_id][i].recall
                            for i in ALL_INDICATORS
                        ]
                    )
                ),
            )
            out[model_id] = result
        return out

    # ------------------------------------------------------------------
    # Fig. 6

    def run_fig6(self) -> ExperimentResult:
        """Prompt-language sweep on Gemini 1.5 Pro."""
        result = ExperimentResult(
            experiment_id="Fig. 6",
            title="Gemini recall by prompt language",
            columns=["language", "recall", "paper_recall", "SW_recall",
                     "SR_recall"],
        )
        for language in (
            Language.ENGLISH,
            Language.BENGALI,
            Language.SPANISH,
            Language.CHINESE,
        ):
            predictions = self.model_predictions(
                GEMINI_15_PRO, language=language
            )
            report = ClassificationReport.from_predictions(
                self.truths, predictions
            )
            result.add_row(
                language=language.value,
                recall=report.mean_recall,
                paper_recall=PAPER_LANGUAGE_RECALL[language],
                SW_recall=report.counts[Indicator.SIDEWALK].recall,
                SR_recall=report.counts[
                    Indicator.SINGLE_LANE_ROAD
                ].recall,
            )
        result.notes.append(
            "paper: zh sidewalk recall ≈ 0.01; es single-lane recall ≈ 0.18"
        )
        return result

    # ------------------------------------------------------------------
    # §IV-C4

    def run_param(self) -> ExperimentResult:
        """Temperature and top-p sweeps on Gemini 1.5 Pro."""
        result = ExperimentResult(
            experiment_id="§IV-C4",
            title="Parameter tuning (Gemini F1)",
            columns=["parameter", "value", "f1", "paper_f1"],
        )
        for temperature, paper_f1 in sorted(PAPER_TEMPERATURE_F1.items()):
            predictions = self.model_predictions(
                GEMINI_15_PRO, temperature=temperature
            )
            report = ClassificationReport.from_predictions(
                self.truths, predictions
            )
            result.add_row(
                parameter="temperature",
                value=temperature,
                f1=report.mean_f1,
                paper_f1=paper_f1,
            )
        for top_p, paper_f1 in sorted(PAPER_TOP_P_F1.items()):
            predictions = self.model_predictions(GEMINI_15_PRO, top_p=top_p)
            report = ClassificationReport.from_predictions(
                self.truths, predictions
            )
            result.add_row(
                parameter="top_p",
                value=top_p,
                f1=report.mean_f1,
                paper_f1=paper_f1,
            )
        result.notes.append(
            "paper: sampling parameters mainly influence output variety, "
            "not task performance (F1 within ±0.03 of default)"
        )
        return result

    # ------------------------------------------------------------------
    # §IV-B3

    def run_prior(self) -> ExperimentResult:
        """Prior-work comparison against our Table I metrics."""
        if self._detector_report is None:
            self.run_table1()
        return prior_work_comparison(self._detector_report)

    # ------------------------------------------------------------------
    # the whole suite

    def run_all(
        self,
        names: list[str] | None = None,
        workers: int | str | None = None,
    ) -> "SuiteRun":
        """Run experiments (default: all of them), optionally concurrently.

        Shared inputs — dataset, splits, calibrated clients, the
        trained detector, and the default full-dataset predictions of
        every model — are warmed *before* the fan-out, so concurrent
        experiments read the caches instead of racing to build them.
        The fan-out itself uses the thread backend: experiments share
        those in-memory caches (which processes would have to
        duplicate), and their heavy lifting is either BLAS (releases
        the GIL) or already process-parallel internally via
        ``self.workers``.
        """
        from ..parallel import ParallelExecutor

        names = list(PAPER_RUNNERS) if names is None else list(names)
        unknown = [name for name in names if name not in PAPER_RUNNERS]
        if unknown:
            raise ValueError(f"unknown experiments: {unknown}")
        workers = self.workers if workers is None else workers

        registry = get_metrics()
        metrics_before = registry.snapshot()
        started = time.perf_counter()
        with get_tracer().span("suite", experiments=len(names)):
            _ = self.dataset, self.splits, self.trained_detector
            if any(name in _LLM_EXPERIMENTS for name in names):
                _ = self.clients
                for model_id in ALL_MODEL_IDS:
                    self.model_predictions(model_id)

            executor = ParallelExecutor(workers=workers, backend="auto")
            outcomes = executor.run(
                lambda name: PAPER_RUNNERS[name](self), names
            )
            results = {
                name: outcome.result()
                for name, outcome in zip(names, outcomes)
            }
        return SuiteRun(
            results=results,
            elapsed_s=time.perf_counter() - started,
            cache_stats=self.cache_stats(),
            metrics=registry.delta_since(metrics_before),
        )


@dataclass
class SuiteRun:
    """Every result of one suite invocation, plus how it was produced.

    ``cache_stats`` carries the artifact cache's hit/miss counters so
    suite consumers (the CLI, the perf benches) can report how much
    work was replayed from disk instead of recomputed.  ``metrics`` is
    the observability-counter delta the run moved (see
    :mod:`repro.obs.metrics`) — empty when nothing instrumented ran.
    """

    results: dict[str, list[ExperimentResult]]
    elapsed_s: float
    cache_stats: dict
    metrics: dict = field(default_factory=dict)

    def all_results(self) -> list[ExperimentResult]:
        return [result for group in self.results.values() for result in group]

    def render_summary(self) -> str:
        lines = [
            f"suite: {len(self.results)} experiments in {self.elapsed_s:.1f}s"
        ]
        if self.cache_stats:
            lines.append(
                "artifact cache: "
                f"{self.cache_stats['hits']} hits, "
                f"{self.cache_stats['misses']} misses"
            )
        return "\n".join(lines)


def _as_results(outcome) -> list[ExperimentResult]:
    if isinstance(outcome, dict):
        return list(outcome.values())
    if isinstance(outcome, list):
        return outcome
    return [outcome]


#: Experiments that consume the simulated LLM clients; a ``run_all``
#: over a detector-only subset skips calibrating and pre-warming them.
_LLM_EXPERIMENTS = frozenset(
    {"table2", "fig4", "fig5", "tables3to6", "fig6", "param"}
)

#: Experiment name → runner over a suite, returning a result list.
#: The CLI builds its menu from this; :meth:`ExperimentSuite.run_all`
#: fans out over it.
PAPER_RUNNERS = {
    "table1": lambda s: _as_results(s.run_table1()),
    "fig2": lambda s: _as_results(s.run_fig2()),
    "fig3": lambda s: _as_results(s.run_fig3()),
    "table2": lambda s: _as_results(s.run_table2()),
    "fig4": lambda s: _as_results(s.run_fig4()),
    "fig5": lambda s: _as_results(s.run_fig5()),
    "tables3to6": lambda s: _as_results(s.run_tables3to6()),
    "fig6": lambda s: _as_results(s.run_fig6()),
    "param": lambda s: _as_results(s.run_param()),
    "prior": lambda s: _as_results(s.run_prior()),
}


def _table_number(model_id: str) -> str:
    return {
        "gpt-4o-mini": "III",
        "gemini-1.5-pro": "IV",
        "grok-2": "V",
        "claude-3.7": "VI",
    }[model_id]
