"""Result containers and text rendering for the experiment suite.

Every experiment returns an :class:`ExperimentResult`: named rows of
measured values, optionally paired with the paper's reference values,
renderable as an aligned text table (this is what the benches print).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ExperimentResult:
    """A table of results for one experiment."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"row missing columns: {missing}")
        self.rows.append(values)

    def column(self, name: str) -> list[object]:
        return [row[name] for row in self.rows]

    def row_by(self, key_column: str, key: object) -> dict[str, object]:
        for row in self.rows:
            if row[key_column] == key:
                return row
        raise KeyError(f"no row with {key_column}={key!r}")

    def render(self) -> str:
        """Aligned plain-text rendering (paper-table style)."""
        header = [self.experiment_id + " — " + self.title]
        widths = {}
        for col in self.columns:
            cells = [_fmt(row[col]) for row in self.rows]
            widths[col] = max([len(col)] + [len(c) for c in cells])
        line = "  ".join(col.ljust(widths[col]) for col in self.columns)
        header.append(line)
        header.append("-" * len(line))
        for row in self.rows:
            header.append(
                "  ".join(
                    _fmt(row[col]).ljust(widths[col]) for col in self.columns
                )
            )
        for note in self.notes:
            header.append(f"note: {note}")
        return "\n".join(header)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if np.isnan(value):
            return "n/a"
        return f"{value:.3f}"
    return str(value)


def ratio(ours: float, paper: float) -> float:
    """Measured/paper ratio, NaN-safe."""
    if paper == 0 or np.isnan(paper) or np.isnan(ours):
        return float("nan")
    return ours / paper
