"""Prior-work comparison (§IV-B3).

The paper situates its detector against two published GSV indicator
models: the ResNet-18 multitask classifier of Alirezaei et al. [11]
and the VGG-19 classifier of Nguyen et al. [6].  Their published
scores are transcribed here and compared against our measured Table I
metrics.
"""

from __future__ import annotations

from ..detect.evaluate import EvaluationReport
from .results import ExperimentResult

#: Alirezaei et al. [11]: ResNet-18 multitask F1 per class.
ALIREZAEI_F1 = {
    "Dilapidated building": 0.95,
    "Chain-link fence": 0.57,
    "Streetlight": 0.59,
}

#: Nguyen et al. [6]: VGG-19 accuracy per indicator.
NGUYEN_ACCURACY = {
    "Street greenness": 0.887,
    "Crosswalk": 0.972,
    "Visible utility wires": 0.83,
    "Non-single family home": 0.8235,
    "Single-lane road": 0.8841,
}


def prior_work_comparison(report: EvaluationReport) -> ExperimentResult:
    """Compare our average F1 with the prior models' published scores."""
    result = ExperimentResult(
        experiment_id="§IV-B3",
        title="Comparison with existing GSV indicator models",
        columns=["model", "metric", "score"],
    )
    for label, f1 in ALIREZAEI_F1.items():
        result.add_row(
            model="ResNet-18 multitask [11]", metric=f"F1 ({label})", score=f1
        )
    for label, accuracy in NGUYEN_ACCURACY.items():
        result.add_row(
            model="VGG-19 [23]", metric=f"accuracy ({label})", score=accuracy
        )
    result.add_row(
        model="NanoDetector (ours)",
        metric="average F1 (6 indicators)",
        score=report.mean_f1,
    )
    result.notes.append(
        "paper claims a significant improvement over both priors "
        "(average F1 ≈ 0.96); ours should exceed 0.90"
    )
    return result
