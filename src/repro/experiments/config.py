"""Experiment configuration: full paper scale and a fast smoke scale.

Every experiment in the suite shares the same dataset/calibration
inputs, so both scales are centralized here.  The ``paper`` scale
matches Section IV (1,200 images at 640×640, 70/20/10 split, 20
epochs, batch 16); the ``smoke`` scale runs the complete suite in a
couple of minutes for CI.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..detect.model import ModelConfig
from ..detect.train import TrainConfig


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared inputs for the full experiment suite."""

    n_images: int = 1200
    image_size: int = 640
    dataset_seed: int = 0
    calibration_seed: int = 100
    n_calibration_images: int = 600
    split_seed: int = 1
    detector_train: TrainConfig = TrainConfig(epochs=20, batch_size=16)
    detector_model: ModelConfig = ModelConfig()
    evidence_seed: int = 0

    def __post_init__(self) -> None:
        if self.n_images % 4 != 0 or self.n_images <= 0:
            raise ValueError("n_images must be a positive multiple of 4")
        if self.n_calibration_images % 4 != 0:
            raise ValueError("n_calibration_images must be a multiple of 4")
        if self.dataset_seed == self.calibration_seed:
            raise ValueError(
                "calibration must not reuse the evaluation dataset seed"
            )


def paper_config() -> ExperimentConfig:
    """The full Section IV configuration."""
    return ExperimentConfig()


def smoke_config() -> ExperimentConfig:
    """A fast configuration exercising every code path."""
    return ExperimentConfig(
        n_images=240,
        image_size=320,
        n_calibration_images=240,
        detector_train=TrainConfig(epochs=8, batch_size=16),
    )
