"""Synthetic neighborhood-health model.

The paper's motivation (Section I) is the public-health literature
linking built-environment indicators to outcomes: visible power lines
associate with higher obesity and diabetes prevalence [5], while
sidewalks and walkable infrastructure associate with more physical
activity and better outcomes [4], [6].

This module provides the downstream substrate those studies need: a
generative model of tract-level health outcomes whose log-odds are a
linear function of the tract's true indicator exposure rates.  The
coefficient signs follow the cited literature, so a correct analysis
pipeline should recover them — and an analysis run on *LLM-decoded*
exposures (instead of ground truth) exhibits the classical
measurement-error attenuation, quantifying how decoding quality
propagates into epidemiological conclusions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.indicators import ALL_INDICATORS, Indicator

#: Health outcomes modeled, following the references in Section I.
OUTCOMES = ("obesity", "diabetes", "physical_inactivity")

#: Literature-informed log-odds coefficients per unit exposure rate.
#: Signs: powerlines raise obesity/diabetes [5]; sidewalks and
#: streetlights (walkability at night) lower them [4], [6]; apartment
#: density lowers inactivity (mixed-use zoning [6]); multilane roads
#: raise inactivity (car dependence).
TRUE_COEFFICIENTS: dict[str, dict[Indicator, float]] = {
    "obesity": {
        Indicator.STREETLIGHT: -0.5,
        Indicator.SIDEWALK: -1.1,
        Indicator.SINGLE_LANE_ROAD: 0.2,
        Indicator.MULTILANE_ROAD: 0.4,
        Indicator.POWERLINE: 0.9,
        Indicator.APARTMENT: -0.3,
    },
    "diabetes": {
        Indicator.STREETLIGHT: -0.3,
        Indicator.SIDEWALK: -0.8,
        Indicator.SINGLE_LANE_ROAD: 0.1,
        Indicator.MULTILANE_ROAD: 0.3,
        Indicator.POWERLINE: 0.7,
        Indicator.APARTMENT: -0.2,
    },
    "physical_inactivity": {
        Indicator.STREETLIGHT: -0.6,
        Indicator.SIDEWALK: -1.4,
        Indicator.SINGLE_LANE_ROAD: 0.3,
        Indicator.MULTILANE_ROAD: 0.8,
        Indicator.POWERLINE: 0.2,
        Indicator.APARTMENT: -0.5,
    },
}

#: Baseline log-odds (intercepts) roughly matching US county rates.
BASE_LOG_ODDS = {
    "obesity": -0.8,
    "diabetes": -2.0,
    "physical_inactivity": -1.0,
}


@dataclass(frozen=True)
class Tract:
    """One census-tract-like unit with exposures and outcomes."""

    tract_id: str
    county: str
    zone_kind: str
    population: int
    exposure: dict[Indicator, float]
    outcome_counts: dict[str, int]

    def prevalence(self, outcome: str) -> float:
        return self.outcome_counts[outcome] / self.population

    def exposure_vector(self) -> np.ndarray:
        return np.array(
            [self.exposure[ind] for ind in ALL_INDICATORS], dtype=float
        )


@dataclass
class HealthModel:
    """Generative tract-level outcome model."""

    coefficients: dict[str, dict[Indicator, float]] = field(
        default_factory=lambda: TRUE_COEFFICIENTS
    )
    base_log_odds: dict[str, float] = field(
        default_factory=lambda: BASE_LOG_ODDS
    )
    tract_noise_sigma: float = 0.15
    seed: int = 0

    def outcome_probability(
        self, outcome: str, exposure: dict[Indicator, float], noise: float = 0.0
    ) -> float:
        """True outcome probability for a tract's exposure profile."""
        if outcome not in self.coefficients:
            raise ValueError(f"unknown outcome: {outcome!r}")
        log_odds = self.base_log_odds[outcome] + noise
        for indicator, beta in self.coefficients[outcome].items():
            log_odds += beta * exposure[indicator]
        return float(1.0 / (1.0 + np.exp(-log_odds)))

    def sample_tract(
        self,
        tract_id: str,
        county: str,
        zone_kind: str,
        exposure: dict[Indicator, float],
        population: int,
        rng: np.random.Generator,
    ) -> Tract:
        """Draw outcome counts for one tract from the model."""
        if population <= 0:
            raise ValueError(f"population must be positive: {population}")
        for indicator in ALL_INDICATORS:
            if not 0.0 <= exposure.get(indicator, -1) <= 1.0:
                raise ValueError(
                    f"exposure for {indicator.value} out of [0, 1]"
                )
        counts = {}
        for outcome in OUTCOMES:
            noise = float(rng.normal(0.0, self.tract_noise_sigma))
            probability = self.outcome_probability(outcome, exposure, noise)
            counts[outcome] = int(rng.binomial(population, probability))
        return Tract(
            tract_id=tract_id,
            county=county,
            zone_kind=zone_kind,
            population=population,
            exposure=dict(exposure),
            outcome_counts=counts,
        )
