"""Health-outcome substrate: the paper's motivating use case.

Synthetic tract-level outcomes generated from literature-informed
indicator effects, binomial logistic regression written in numpy, and
association studies comparing ground-truth vs LLM-decoded exposures.
"""

from .model import (
    BASE_LOG_ODDS,
    OUTCOMES,
    TRUE_COEFFICIENTS,
    HealthModel,
    Tract,
)
from .regression import (
    CoefficientEstimate,
    ConvergenceError,
    LogisticFit,
    fit_logistic,
)
from .study import (
    AssociationStudy,
    TractSurvey,
    build_tract_survey,
    run_association_study,
)

__all__ = [
    "BASE_LOG_ODDS",
    "OUTCOMES",
    "TRUE_COEFFICIENTS",
    "HealthModel",
    "Tract",
    "CoefficientEstimate",
    "ConvergenceError",
    "LogisticFit",
    "fit_logistic",
    "AssociationStudy",
    "TractSurvey",
    "build_tract_survey",
    "run_association_study",
]
