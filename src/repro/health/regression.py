"""Binomial logistic regression, written out in numpy.

The association analyses in the GSV-health literature ([2], [5], [6])
regress tract-level outcome prevalence on built-environment exposure
rates.  This module implements the estimator they use — logistic
regression with binomial counts — via iteratively reweighted least
squares (IRLS, i.e. Newton–Raphson on the log-likelihood), including
standard errors from the Fisher information, Wald z-tests, and odds
ratios with confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class ConvergenceError(RuntimeError):
    """IRLS failed to converge (separation or degenerate design)."""


@dataclass(frozen=True)
class CoefficientEstimate:
    """One fitted coefficient with inferential statistics."""

    name: str
    estimate: float
    std_error: float

    @property
    def z_value(self) -> float:
        if self.std_error == 0:
            return float("inf") if self.estimate != 0 else 0.0
        return self.estimate / self.std_error

    @property
    def odds_ratio(self) -> float:
        return float(np.exp(self.estimate))

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Wald CI for the coefficient (on the log-odds scale)."""
        half = z * self.std_error
        return (self.estimate - half, self.estimate + half)

    @property
    def significant(self) -> bool:
        """|z| > 1.96 — the conventional 5% two-sided test."""
        return abs(self.z_value) > 1.96


@dataclass
class LogisticFit:
    """A fitted binomial logistic regression."""

    coefficients: list[CoefficientEstimate]
    log_likelihood: float
    iterations: int
    converged: bool

    def coefficient(self, name: str) -> CoefficientEstimate:
        for estimate in self.coefficients:
            if estimate.name == name:
                return estimate
        raise KeyError(f"no coefficient named {name!r}")

    @property
    def beta(self) -> np.ndarray:
        return np.array([c.estimate for c in self.coefficients])


def _log_likelihood(
    beta: np.ndarray,
    design: np.ndarray,
    successes: np.ndarray,
    trials: np.ndarray,
) -> float:
    eta = design @ beta
    # log L = Σ y·η − n·log(1 + e^η)  (binomial, dropping constants)
    return float(
        np.sum(successes * eta - trials * np.logaddexp(0.0, eta))
    )


def fit_logistic(
    design: np.ndarray,
    successes: np.ndarray,
    trials: np.ndarray,
    feature_names: list[str] | None = None,
    add_intercept: bool = True,
    max_iterations: int = 50,
    tolerance: float = 1e-8,
    ridge: float = 1e-8,
) -> LogisticFit:
    """Fit ``successes/trials ~ Binomial(logistic(X β))`` by IRLS.

    ``design`` is ``(n_units, n_features)``; ``successes`` and
    ``trials`` are per-unit counts.  A tiny ridge term keeps the
    Hessian invertible under near-collinear exposures.
    """
    design = np.asarray(design, dtype=float)
    successes = np.asarray(successes, dtype=float)
    trials = np.asarray(trials, dtype=float)
    if design.ndim != 2:
        raise ValueError("design matrix must be 2-D")
    n_units = design.shape[0]
    if successes.shape != (n_units,) or trials.shape != (n_units,):
        raise ValueError("successes/trials must align with the design")
    if np.any(trials <= 0):
        raise ValueError("every unit needs a positive trial count")
    if np.any(successes < 0) or np.any(successes > trials):
        raise ValueError("successes must lie in [0, trials]")

    if add_intercept:
        design = np.column_stack([np.ones(n_units), design])
    n_features = design.shape[1]
    if feature_names is None:
        feature_names = [f"x{i}" for i in range(n_features - int(add_intercept))]
    names = (
        ["(intercept)"] + list(feature_names)
        if add_intercept
        else list(feature_names)
    )
    if len(names) != n_features:
        raise ValueError(
            f"{len(names)} names for {n_features} design columns"
        )

    beta = np.zeros(n_features)
    previous_ll = _log_likelihood(beta, design, successes, trials)
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        eta = design @ beta
        mu = 1.0 / (1.0 + np.exp(-np.clip(eta, -35, 35)))
        weights = trials * mu * (1.0 - mu)
        gradient = design.T @ (successes - trials * mu)
        hessian = (design * weights[:, None]).T @ design
        hessian += ridge * np.eye(n_features)
        try:
            step = np.linalg.solve(hessian, gradient)
        except np.linalg.LinAlgError as err:
            raise ConvergenceError("singular Hessian") from err
        beta = beta + step
        current_ll = _log_likelihood(beta, design, successes, trials)
        if abs(current_ll - previous_ll) < tolerance * (
            1.0 + abs(previous_ll)
        ):
            converged = True
            previous_ll = current_ll
            break
        previous_ll = current_ll

    if not np.all(np.isfinite(beta)):
        raise ConvergenceError("coefficients diverged")

    eta = design @ beta
    mu = 1.0 / (1.0 + np.exp(-np.clip(eta, -35, 35)))
    weights = trials * mu * (1.0 - mu)
    fisher = (design * weights[:, None]).T @ design + ridge * np.eye(
        n_features
    )
    covariance = np.linalg.inv(fisher)
    std_errors = np.sqrt(np.clip(np.diag(covariance), 0.0, None))

    return LogisticFit(
        coefficients=[
            CoefficientEstimate(name, float(b), float(se))
            for name, b, se in zip(names, beta, std_errors)
        ],
        log_likelihood=previous_ll,
        iterations=iteration,
        converged=converged,
    )
