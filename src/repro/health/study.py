"""Association studies: indicators → health outcomes, end to end.

Ties the whole reproduction to its motivating use case (Section I):

1. generate tracts across a county, each with a *true* indicator
   exposure profile (from the scene generator's zone priors realized
   over sampled locations) and synthetic outcome counts drawn from the
   literature-informed :class:`~repro.health.model.HealthModel`;
2. decode each tract's exposure with an LLM classifier (or take the
   ground truth);
3. regress outcome counts on exposures and compare the recovered
   coefficients against the generative truth.

Running the same analysis with ground-truth vs LLM-decoded exposures
quantifies how decoding error attenuates epidemiological estimates —
the question any adopter of the paper's pipeline should ask.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.classifier import LLMIndicatorClassifier
from ..core.indicators import ALL_INDICATORS, Indicator
from ..geo.county import County
from ..geo.roadnet import build_road_network
from ..geo.sampling import (
    build_sampling_frame,
    expand_to_captures,
    select_survey_locations,
)
from ..gsv.api import StreetViewClient
from ..gsv.dataset import LabeledImage
from .model import OUTCOMES, HealthModel, Tract
from .regression import LogisticFit, fit_logistic


@dataclass
class TractSurvey:
    """Tracts plus the imagery used to estimate their exposures."""

    tracts: list[Tract]
    images_by_tract: dict[str, list[LabeledImage]]

    def true_exposures(self) -> dict[str, dict[Indicator, float]]:
        return {t.tract_id: dict(t.exposure) for t in self.tracts}

    def decoded_exposures(
        self, classifier: LLMIndicatorClassifier
    ) -> dict[str, dict[Indicator, float]]:
        """Per-tract exposure rates as decoded by an LLM classifier."""
        decoded = {}
        for tract in self.tracts:
            images = self.images_by_tract[tract.tract_id]
            predictions = classifier.predictions(images)
            decoded[tract.tract_id] = {
                indicator: float(
                    np.mean([p[indicator] for p in predictions])
                )
                for indicator in ALL_INDICATORS
            }
        return decoded


def build_tract_survey(
    county: County,
    n_tracts: int = 24,
    locations_per_tract: int = 6,
    population_range: tuple[int, int] = (800, 4000),
    health_model: HealthModel | None = None,
    seed: int = 0,
) -> TractSurvey:
    """Sample tracts, their imagery, and their synthetic outcomes."""
    if n_tracts <= 0 or locations_per_tract <= 0:
        raise ValueError("tract and location counts must be positive")
    if health_model is None:
        health_model = HealthModel(seed=seed)
    rng = np.random.default_rng(seed + 101)

    graph = build_road_network(county, seed=seed + 3)
    frame = build_sampling_frame(county, graph)
    points = select_survey_locations(
        {county.name: frame}, n_tracts * locations_per_tract, seed=seed + 5
    )
    client = StreetViewClient(
        counties=[county], api_key="health-study", generator_seed=seed
    )

    tracts = []
    images_by_tract: dict[str, list[LabeledImage]] = {}
    for tract_index in range(n_tracts):
        tract_id = f"{county.name.lower()}_tract_{tract_index:03d}"
        tract_points = points[
            tract_index * locations_per_tract : (tract_index + 1)
            * locations_per_tract
        ]
        images: list[LabeledImage] = []
        for point_index, point in enumerate(tract_points):
            for capture in expand_to_captures([point]):
                served = client.fetch_capture(capture, render=False)
                images.append(
                    LabeledImage(
                        image_id=(
                            f"{tract_id}_p{point_index}_h{capture.heading}"
                        ),
                        scene=served.scene,
                        annotations=tuple(
                            (obj.indicator, obj.box)
                            for obj in served.scene.objects
                        ),
                    )
                )
        exposure = {
            indicator: float(
                np.mean([image.presence[indicator] for image in images])
            )
            for indicator in ALL_INDICATORS
        }
        zone_kind = tract_points[0].zone_kind.value
        population = int(rng.integers(*population_range))
        tracts.append(
            health_model.sample_tract(
                tract_id=tract_id,
                county=county.name,
                zone_kind=zone_kind,
                exposure=exposure,
                population=population,
                rng=rng,
            )
        )
        images_by_tract[tract_id] = images
    return TractSurvey(tracts=tracts, images_by_tract=images_by_tract)


@dataclass
class AssociationStudy:
    """Fitted outcome models for one exposure source."""

    exposure_source: str
    fits: dict[str, LogisticFit]

    def coefficient(self, outcome: str, indicator: Indicator):
        return self.fits[outcome].coefficient(indicator.value)

    def sign_agreement(
        self, truth: dict[str, dict[Indicator, float]]
    ) -> float:
        """Fraction of (outcome, indicator) coefficient signs recovered.

        Only coefficients with |true β| ≥ 0.3 count — near-zero true
        effects have no meaningful sign.
        """
        agree = 0
        total = 0
        for outcome, coefficients in truth.items():
            for indicator, beta in coefficients.items():
                if abs(beta) < 0.3:
                    continue
                total += 1
                estimate = self.coefficient(outcome, indicator).estimate
                if np.sign(estimate) == np.sign(beta):
                    agree += 1
        return agree / total if total else float("nan")


def run_association_study(
    survey: TractSurvey,
    exposures: dict[str, dict[Indicator, float]],
    exposure_source: str,
) -> AssociationStudy:
    """Regress every outcome on the given per-tract exposures."""
    tract_ids = [tract.tract_id for tract in survey.tracts]
    missing = [tid for tid in tract_ids if tid not in exposures]
    if missing:
        raise ValueError(f"exposures missing for tracts: {missing[:3]}")
    design = np.array(
        [
            [exposures[tid][ind] for ind in ALL_INDICATORS]
            for tid in tract_ids
        ]
    )
    trials = np.array([tract.population for tract in survey.tracts])
    fits = {}
    for outcome in OUTCOMES:
        successes = np.array(
            [tract.outcome_counts[outcome] for tract in survey.tracts]
        )
        fits[outcome] = fit_logistic(
            design,
            successes,
            trials,
            feature_names=[ind.value for ind in ALL_INDICATORS],
        )
    return AssociationStudy(exposure_source=exposure_source, fits=fits)
