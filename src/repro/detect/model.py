"""The NanoDetector: a YOLO-style single-stage grid detector in numpy.

Architecture (mirroring the YOLOv11 stage names the paper cites):

* **backbone** — hand-crafted per-cell features (``features.py``),
* **neck** — feature standardization + one shared fully-connected
  ReLU layer,
* **head** — per-cell, per-class outputs: an objectness logit and a
  4-vector box regression in ``cxcywh`` (sigmoid-squashed so predicted
  boxes always live on the unit canvas).

Every positive cell predicts the *full* box of the object covering it;
at inference the per-class NMS (with cluster merging) collapses the
redundant per-cell predictions into one detection.  Forward and
backward passes are written out explicitly — no autograd framework.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.indicators import ALL_INDICATORS, Indicator
from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from ..parallel.arena import TensorArena
from .boxes import clip_boxes, cxcywh_to_xyxy, nms
from .features import FeatureConfig, extract_features, extract_features_batch

N_CLASSES = len(ALL_INDICATORS)

#: Outputs per class: 1 objectness logit + 4 box parameters.
_PER_CLASS = 5

#: Inference tiers, cheapest-exactness first: ``float64`` is the
#: bit-exact reference, ``float32`` a tolerance-tested fast path, and
#: ``int8`` a dynamically-quantized MLP forward (per-layer weight
#: scales, per-batch activation scales) whose presence decisions agree
#: with float64 within the benched micro-F1 delta.
PRECISIONS = ("float64", "float32", "int8")

#: int8 quantization range (symmetric).
_QLEVELS = 127.0


def _quantize_symmetric(
    matrix: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-output-column symmetric int8 quantization of a weight matrix.

    Returns ``(q, scale)`` with ``q`` int8-valued (stored as float32 so
    BLAS sgemm does the integer accumulation exactly — products of
    magnitude ≤ 127² summed over ≤ 1k terms stay below 2²⁴, float32's
    exact-integer range) and ``matrix ≈ q * scale`` columnwise.
    """
    absmax = np.abs(matrix).max(axis=0)
    scale = np.where(absmax > 0, absmax / _QLEVELS, 1.0).astype(np.float32)
    q = np.rint(matrix / scale).astype(np.float32)
    return q, scale


@dataclass(frozen=True)
class Detection:
    """One detected object instance."""

    indicator: Indicator
    box: np.ndarray  # normalized xyxy
    score: float


@dataclass(frozen=True)
class ModelConfig:
    """NanoDetector hyperparameters."""

    grid: int = 16
    hidden: int = 160
    conf_threshold: float = 0.40
    nms_iou: float = 0.45
    smooth_features: bool = True
    context_features: bool = True

    @property
    def feature_config(self) -> FeatureConfig:
        return FeatureConfig(
            grid=self.grid,
            smooth=self.smooth_features,
            context=self.context_features,
        )


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def _label_components(mask: np.ndarray) -> tuple[np.ndarray, int]:
    """8-connected component labeling of a boolean grid mask.

    Returns ``(labels, n_components)`` where ``labels`` is ``-1`` on
    background cells and a component index elsewhere.
    """
    grid_h, grid_w = mask.shape
    labels = -np.ones(mask.shape, dtype=np.int32)
    n_components = 0
    for i in range(grid_h):
        for j in range(grid_w):
            if not mask[i, j] or labels[i, j] >= 0:
                continue
            stack = [(i, j)]
            labels[i, j] = n_components
            while stack:
                a, b = stack.pop()
                for da in (-1, 0, 1):
                    for db in (-1, 0, 1):
                        x, y = a + da, b + db
                        if (
                            0 <= x < grid_h
                            and 0 <= y < grid_w
                            and mask[x, y]
                            and labels[x, y] < 0
                        ):
                            labels[x, y] = n_components
                            stack.append((x, y))
            n_components += 1
    return labels, n_components


@dataclass
class NanoDetector:
    """Trainable grid detector over the six environmental indicators."""

    config: ModelConfig = field(default_factory=ModelConfig)
    w1: np.ndarray | None = None
    b1: np.ndarray | None = None
    w2: np.ndarray | None = None
    b2: np.ndarray | None = None
    feat_mean: np.ndarray | None = None
    feat_std: np.ndarray | None = None

    @property
    def output_dim(self) -> int:
        return N_CLASSES * _PER_CLASS

    @property
    def is_initialized(self) -> bool:
        return self.w1 is not None

    def initialize(self, feature_dim: int, rng: np.random.Generator) -> None:
        """He-style random initialization of both layers."""
        hidden = self.config.hidden
        self.w1 = rng.normal(0.0, np.sqrt(2.0 / feature_dim), (feature_dim, hidden))
        self.b1 = np.zeros(hidden)
        self.w2 = rng.normal(0.0, np.sqrt(2.0 / hidden), (hidden, self.output_dim))
        self.b2 = np.zeros(self.output_dim)
        self.feat_mean = np.zeros(feature_dim)
        self.feat_std = np.ones(feature_dim)

    def set_normalization(self, mean: np.ndarray, std: np.ndarray) -> None:
        """Install feature standardization statistics (from train set)."""
        self.feat_mean = np.asarray(mean, dtype=np.float64)
        self.feat_std = np.where(np.asarray(std) > 1e-9, std, 1.0)

    # ------------------------------------------------------------------
    # dtype-tiered inference

    def _parameters(self) -> tuple:
        return (
            self.w1, self.b1, self.w2, self.b2, self.feat_mean, self.feat_std
        )

    def _inference_tier(self, precision: str) -> dict:
        """Lazily built (and identity-invalidated) weights for one tier.

        Keyed by the *identity* of the current parameter arrays: any
        path that installs new weights — ``initialize``, ``from_dict``,
        ``set_normalization``, every SGD parameter update — binds fresh
        arrays, so a stale cache entry simply stops matching.  Holding
        references to the source arrays keeps their identities stable.
        """
        self._require_initialized()
        cache = self.__dict__.setdefault("_tier_cache", {})
        params = self._parameters()
        entry = cache.get(precision)
        if entry is not None and all(
            cached is live for cached, live in zip(entry["params"], params)
        ):
            return entry
        if precision == "float32":
            entry = {
                "params": params,
                "arrays": tuple(
                    np.asarray(p, dtype=np.float32) for p in params
                ),
            }
        elif precision == "int8":
            w1_q, w1_scale = _quantize_symmetric(self.w1)
            w2_q, w2_scale = _quantize_symmetric(self.w2)
            entry = {
                "params": params,
                "w1_q": w1_q,
                "w1_scale": w1_scale,
                "w2_q": w2_q,
                "w2_scale": w2_scale,
                "b1": self.b1.astype(np.float32),
                "b2": self.b2.astype(np.float32),
                "mean": self.feat_mean.astype(np.float32),
                "std": self.feat_std.astype(np.float32),
            }
        else:
            raise ValueError(
                f"unknown precision {precision!r}; expected one of "
                f"{PRECISIONS}"
            )
        cache[precision] = entry
        return entry

    @staticmethod
    def _quantize_activations(x: np.ndarray) -> tuple[np.ndarray, float]:
        """Dynamic symmetric int8 activation quantization (one scale)."""
        absmax = float(np.abs(x).max()) if x.size else 0.0
        scale = absmax / _QLEVELS if absmax > 0 else 1.0
        q = np.clip(np.rint(x / np.float32(scale)), -_QLEVELS, _QLEVELS)
        return q.astype(np.float32), scale

    def _infer_logits(self, features: np.ndarray, precision: str) -> np.ndarray:
        """Forward pass for inference at the requested numeric tier."""
        if precision == "float64":
            logits, _, _ = self.forward(features)
            return logits
        if precision == "float32":
            w1, b1, w2, b2, mean, std = self._inference_tier(precision)[
                "arrays"
            ]
            x = (np.asarray(features, dtype=np.float32) - mean) / std
            hidden = np.maximum(x @ w1 + b1, np.float32(0.0))
            return hidden @ w2 + b2
        if precision == "int8":
            tier = self._inference_tier(precision)
            x = (np.asarray(features, dtype=np.float32) - tier["mean"]) / (
                tier["std"]
            )
            x_q, x_scale = self._quantize_activations(x)
            hidden = (x_q @ tier["w1_q"]) * (
                np.float32(x_scale) * tier["w1_scale"]
            ) + tier["b1"]
            np.maximum(hidden, np.float32(0.0), out=hidden)
            h_q, h_scale = self._quantize_activations(hidden)
            return (h_q @ tier["w2_q"]) * (
                np.float32(h_scale) * tier["w2_scale"]
            ) + tier["b2"]
        raise ValueError(
            f"unknown precision {precision!r}; expected one of {PRECISIONS}"
        )

    # ------------------------------------------------------------------
    # forward / backward

    def forward(
        self, features: np.ndarray, arena: TensorArena | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Forward pass on standardized inputs.

        Returns ``(logits, hidden_activations, standardized_inputs)``;
        the latter two are retained for the backward pass.  With an
        ``arena`` the three tensors live in reusable buffers (the SGD
        loop calls this thousands of times at the same shapes); the
        operations and their order are identical either way, so the
        results are bit-equal — only ownership of the memory changes.
        Arena-returned tensors are invalidated by the next same-shape
        ``forward`` call.
        """
        self._require_initialized()
        if arena is None:
            x = (features - self.feat_mean) / self.feat_std
            hidden = np.maximum(x @ self.w1 + self.b1, 0.0)
            logits = hidden @ self.w2 + self.b2
            return logits, hidden, x
        x = arena.take("forward.x", features.shape)
        np.subtract(features, self.feat_mean, out=x)
        np.divide(x, self.feat_std, out=x)
        hidden = arena.take(
            "forward.hidden", (features.shape[0], self.w1.shape[1])
        )
        np.matmul(x, self.w1, out=hidden)
        np.add(hidden, self.b1, out=hidden)
        np.maximum(hidden, 0.0, out=hidden)
        logits = arena.take(
            "forward.logits", (features.shape[0], self.w2.shape[1])
        )
        np.matmul(hidden, self.w2, out=logits)
        np.add(logits, self.b2, out=logits)
        return logits, hidden, x

    def backward(
        self,
        grad_logits: np.ndarray,
        hidden: np.ndarray,
        x: np.ndarray,
        arena: TensorArena | None = None,
    ) -> dict[str, np.ndarray]:
        """Gradients of the loss w.r.t. every parameter.

        Same arena contract as :meth:`forward`: buffers are reused
        across calls, values are bit-equal to the allocating path.
        """
        if arena is None:
            grad_w2 = hidden.T @ grad_logits
            grad_b2 = grad_logits.sum(axis=0)
            grad_hidden = grad_logits @ self.w2.T
            grad_hidden[hidden <= 0.0] = 0.0
            grad_w1 = x.T @ grad_hidden
            grad_b1 = grad_hidden.sum(axis=0)
            return {"w1": grad_w1, "b1": grad_b1, "w2": grad_w2, "b2": grad_b2}
        grad_w2 = arena.take("backward.w2", self.w2.shape)
        np.matmul(hidden.T, grad_logits, out=grad_w2)
        grad_b2 = arena.take("backward.b2", self.b2.shape)
        grad_logits.sum(axis=0, out=grad_b2)
        grad_hidden = arena.take("backward.hidden", hidden.shape)
        np.matmul(grad_logits, self.w2.T, out=grad_hidden)
        grad_hidden[hidden <= 0.0] = 0.0
        grad_w1 = arena.take("backward.w1", self.w1.shape)
        np.matmul(x.T, grad_hidden, out=grad_w1)
        grad_b1 = arena.take("backward.b1", self.b1.shape)
        grad_hidden.sum(axis=0, out=grad_b1)
        return {"w1": grad_w1, "b1": grad_b1, "w2": grad_w2, "b2": grad_b2}

    # ------------------------------------------------------------------
    # structured views of the output tensor

    @staticmethod
    def split_logits(logits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split ``(N, C*5)`` logits into objectness and box channels.

        Returns ``(obj_logits (N, C), box_logits (N, C, 4))``.
        """
        n = logits.shape[0]
        reshaped = logits.reshape(n, N_CLASSES, _PER_CLASS)
        return reshaped[:, :, 0], reshaped[:, :, 1:]

    # ------------------------------------------------------------------
    # inference

    def predict_cells_from_features(
        self, features: np.ndarray, precision: str = "float64"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Raw per-cell predictions from precomputed backbone features.

        Accepts one image's features ``(n_cells, D)`` or a stacked
        batch ``(N, n_cells, D)``; the whole stack goes through a
        single forward pass, so batched inference amortizes the matmul
        setup instead of paying it per image.  Returns
        ``(scores (..., n_cells, C), boxes (..., n_cells, C, 4) xyxy)``
        with the leading batch axis mirroring the input.

        ``precision`` selects the numeric tier (see :data:`PRECISIONS`);
        scores and boxes come back float64 at every tier so downstream
        decoding is tier-agnostic.
        """
        features = np.asarray(
            features,
            dtype=np.float64 if precision == "float64" else np.float32,
        )
        batched = features.ndim == 3
        flat = features.reshape(-1, features.shape[-1])
        logits = self._infer_logits(flat, precision)
        obj_logits, box_logits = self.split_logits(logits)
        scores = sigmoid(obj_logits)
        boxes_cxcywh = sigmoid(box_logits)
        boxes_xyxy = clip_boxes(
            cxcywh_to_xyxy(boxes_cxcywh.reshape(-1, 4))
        ).reshape(boxes_cxcywh.shape)
        if batched:
            n_images, n_cells = features.shape[0], features.shape[1]
            scores = scores.reshape(n_images, n_cells, N_CLASSES)
            boxes_xyxy = boxes_xyxy.reshape(n_images, n_cells, N_CLASSES, 4)
        return scores, boxes_xyxy

    def predict_cells(
        self, image: np.ndarray, precision: str = "float64"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Raw per-cell predictions for one image.

        Returns ``(scores (n_cells, C), boxes (n_cells, C, 4) xyxy)``.
        """
        features = extract_features(
            image, self.config.feature_config, precision=precision
        )
        return self.predict_cells_from_features(features, precision=precision)

    def predict_cells_batch(
        self,
        images: Sequence[np.ndarray],
        precision: str = "float64",
        arena: TensorArena | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Raw per-cell predictions for an image stack in one forward pass.

        Returns ``(scores (N, n_cells, C), boxes (N, n_cells, C, 4))``
        numerically identical to calling :meth:`predict_cells` per
        image (verified by tier-1 tests).  Feature extraction shares
        one :class:`~repro.parallel.arena.TensorArena` across the stack
        and writes into a single preallocated tensor.
        """
        if len(images) == 0:
            config = self.config.feature_config
            return (
                np.zeros((0, config.n_cells, N_CLASSES)),
                np.zeros((0, config.n_cells, N_CLASSES, 4)),
            )
        metrics = get_metrics()
        metrics.inc("detect.batch.calls")
        metrics.inc("detect.batch.images", len(images))
        with get_tracer().span("detect.batch", images=len(images)):
            features = extract_features_batch(
                images,
                self.config.feature_config,
                precision=precision,
                arena=arena,
            )
            return self.predict_cells_from_features(
                features, precision=precision
            )

    def predict(
        self,
        image: np.ndarray,
        precision: str = "float64",
        conf_threshold: float | None = None,
    ) -> list[Detection]:
        """Detect objects at a chosen numeric tier.

        The dtype-tiered front door: ``precision="float64"`` is
        :meth:`detect` exactly; ``"float32"`` runs backbone and head in
        float32 (tolerance-equal); ``"int8"`` adds the quantized MLP
        forward.  See the exactness-vs-speed rows in BENCH_detect.json.
        """
        scores, boxes = self.predict_cells(image, precision=precision)
        return self.decode_cells(scores, boxes, conf_threshold=conf_threshold)

    def detect(
        self, image: np.ndarray, conf_threshold: float | None = None
    ) -> list[Detection]:
        """Detect objects in one image.

        Decoding is component-based: confident cells of each class are
        grouped into 8-connected components (the analog of NMS for a
        dense grid head) and each component becomes one detection.  The
        component's box blends two estimates — the union of its cells'
        extents and the per-coordinate median of its cells' regressed
        boxes — which is markedly more robust than trusting any single
        cell's regression.
        """
        scores, boxes = self.predict_cells(image)
        return self.decode_cells(scores, boxes, conf_threshold=conf_threshold)

    def detect_batch(
        self,
        images: Sequence[np.ndarray],
        conf_threshold: float | None = None,
        precision: str = "float64",
    ) -> list[list[Detection]]:
        """Detect objects in an image stack with one batched forward pass.

        Decoding is per image (component labeling does not vectorize
        across images), but the expensive part — standardization and
        the two matmuls — runs once over the whole stack.  Results are
        identical to calling :meth:`detect` per image.
        """
        detections, _ = self.detect_batch_with_scores(
            images, conf_threshold=conf_threshold, precision=precision
        )
        return detections

    @staticmethod
    def indicator_scores(scores: np.ndarray) -> np.ndarray:
        """Per-indicator peak cell score from raw per-cell predictions.

        Reduces ``(..., n_cells, C)`` scores to ``(..., C)`` by taking
        the maximum over cells — the image-level decision evidence the
        cascade router calibrates.  The peak is exactly the quantity
        :meth:`decode_cells` compares against its cutoff, so a margin
        derived from it moves with the detector's own decision rule.
        """
        return np.asarray(scores).max(axis=-2)

    def detect_with_scores(
        self, image: np.ndarray, conf_threshold: float | None = None
    ) -> tuple[list[Detection], np.ndarray]:
        """:meth:`detect` plus the image's per-indicator peak scores.

        The detections are bit-equal to :meth:`detect` — the decoding
        path is shared — and the second element is the ``(C,)`` peak
        score vector (see :meth:`indicator_scores`).
        """
        scores, boxes = self.predict_cells(image)
        return (
            self.decode_cells(scores, boxes, conf_threshold=conf_threshold),
            self.indicator_scores(scores),
        )

    def detect_batch_with_scores(
        self,
        images: Sequence[np.ndarray],
        conf_threshold: float | None = None,
        precision: str = "float64",
    ) -> tuple[list[list[Detection]], np.ndarray]:
        """:meth:`detect_batch` plus per-image per-indicator peak scores.

        Returns ``(detections, peaks (N, C))``.  The detections are the
        *same objects* :meth:`detect_batch` would return (one shared
        forward + decode), so labels stay bit-equal to the existing
        path; the peaks expose the decision margins without changing
        any existing return type.
        """
        scores, boxes = self.predict_cells_batch(images, precision=precision)
        detections = [
            self.decode_cells(
                scores[index], boxes[index], conf_threshold=conf_threshold
            )
            for index in range(len(images))
        ]
        return detections, self.indicator_scores(scores)

    def decode_cells(
        self,
        scores: np.ndarray,
        boxes: np.ndarray,
        conf_threshold: float | None = None,
    ) -> list[Detection]:
        """Component-based decoding of one image's per-cell predictions."""
        threshold = (
            conf_threshold
            if conf_threshold is not None
            else self.config.conf_threshold
        )
        grid = self.config.grid
        detections: list[Detection] = []
        for class_index, indicator in enumerate(ALL_INDICATORS):
            class_scores = scores[:, class_index].reshape(grid, grid)
            peak = float(class_scores.max())
            cutoff = max(threshold, 0.35 * peak)
            mask = class_scores >= cutoff
            if not mask.any():
                continue
            labels, n_components = _label_components(mask)
            for component in range(n_components):
                rows, cols = np.nonzero(labels == component)
                cell_ids = rows * grid + cols
                component_scores = scores[cell_ids, class_index]
                regressed = boxes[cell_ids, class_index, :]
                median_box = np.median(regressed, axis=0)
                union_box = np.array(
                    [
                        cols.min() / grid,
                        rows.min() / grid,
                        (cols.max() + 1) / grid,
                        (rows.max() + 1) / grid,
                    ]
                )
                blended = clip_boxes(
                    ((union_box + median_box) / 2.0).reshape(1, 4)
                )[0]
                detections.append(
                    Detection(
                        indicator=indicator,
                        box=blended,
                        score=float(component_scores.max()),
                    )
                )
        detections.sort(key=lambda d: -d.score)
        return detections

    # ------------------------------------------------------------------
    # persistence

    def to_dict(self) -> dict:
        """Serialize config + weights to plain JSON-compatible types."""
        self._require_initialized()
        return {
            "config": {
                "grid": self.config.grid,
                "hidden": self.config.hidden,
                "conf_threshold": self.config.conf_threshold,
                "nms_iou": self.config.nms_iou,
                "smooth_features": self.config.smooth_features,
                "context_features": self.config.context_features,
            },
            "w1": self.w1.tolist(),
            "b1": self.b1.tolist(),
            "w2": self.w2.tolist(),
            "b2": self.b2.tolist(),
            "feat_mean": self.feat_mean.tolist(),
            "feat_std": self.feat_std.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "NanoDetector":
        config = ModelConfig(**payload["config"])
        model = cls(config=config)
        model.w1 = np.asarray(payload["w1"], dtype=np.float64)
        model.b1 = np.asarray(payload["b1"], dtype=np.float64)
        model.w2 = np.asarray(payload["w2"], dtype=np.float64)
        model.b2 = np.asarray(payload["b2"], dtype=np.float64)
        model.feat_mean = np.asarray(payload["feat_mean"], dtype=np.float64)
        model.feat_std = np.asarray(payload["feat_std"], dtype=np.float64)
        return model

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "NanoDetector":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def _require_initialized(self) -> None:
        if not self.is_initialized:
            raise RuntimeError(
                "NanoDetector is untrained; call initialize() or load()"
            )
