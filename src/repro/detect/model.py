"""The NanoDetector: a YOLO-style single-stage grid detector in numpy.

Architecture (mirroring the YOLOv11 stage names the paper cites):

* **backbone** — hand-crafted per-cell features (``features.py``),
* **neck** — feature standardization + one shared fully-connected
  ReLU layer,
* **head** — per-cell, per-class outputs: an objectness logit and a
  4-vector box regression in ``cxcywh`` (sigmoid-squashed so predicted
  boxes always live on the unit canvas).

Every positive cell predicts the *full* box of the object covering it;
at inference the per-class NMS (with cluster merging) collapses the
redundant per-cell predictions into one detection.  Forward and
backward passes are written out explicitly — no autograd framework.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.indicators import ALL_INDICATORS, Indicator
from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from .boxes import clip_boxes, cxcywh_to_xyxy, nms
from .features import FeatureConfig, extract_features

N_CLASSES = len(ALL_INDICATORS)

#: Outputs per class: 1 objectness logit + 4 box parameters.
_PER_CLASS = 5


@dataclass(frozen=True)
class Detection:
    """One detected object instance."""

    indicator: Indicator
    box: np.ndarray  # normalized xyxy
    score: float


@dataclass(frozen=True)
class ModelConfig:
    """NanoDetector hyperparameters."""

    grid: int = 16
    hidden: int = 160
    conf_threshold: float = 0.40
    nms_iou: float = 0.45
    smooth_features: bool = True
    context_features: bool = True

    @property
    def feature_config(self) -> FeatureConfig:
        return FeatureConfig(
            grid=self.grid,
            smooth=self.smooth_features,
            context=self.context_features,
        )


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def _label_components(mask: np.ndarray) -> tuple[np.ndarray, int]:
    """8-connected component labeling of a boolean grid mask.

    Returns ``(labels, n_components)`` where ``labels`` is ``-1`` on
    background cells and a component index elsewhere.
    """
    grid_h, grid_w = mask.shape
    labels = -np.ones(mask.shape, dtype=np.int32)
    n_components = 0
    for i in range(grid_h):
        for j in range(grid_w):
            if not mask[i, j] or labels[i, j] >= 0:
                continue
            stack = [(i, j)]
            labels[i, j] = n_components
            while stack:
                a, b = stack.pop()
                for da in (-1, 0, 1):
                    for db in (-1, 0, 1):
                        x, y = a + da, b + db
                        if (
                            0 <= x < grid_h
                            and 0 <= y < grid_w
                            and mask[x, y]
                            and labels[x, y] < 0
                        ):
                            labels[x, y] = n_components
                            stack.append((x, y))
            n_components += 1
    return labels, n_components


@dataclass
class NanoDetector:
    """Trainable grid detector over the six environmental indicators."""

    config: ModelConfig = field(default_factory=ModelConfig)
    w1: np.ndarray | None = None
    b1: np.ndarray | None = None
    w2: np.ndarray | None = None
    b2: np.ndarray | None = None
    feat_mean: np.ndarray | None = None
    feat_std: np.ndarray | None = None

    @property
    def output_dim(self) -> int:
        return N_CLASSES * _PER_CLASS

    @property
    def is_initialized(self) -> bool:
        return self.w1 is not None

    def initialize(self, feature_dim: int, rng: np.random.Generator) -> None:
        """He-style random initialization of both layers."""
        hidden = self.config.hidden
        self.w1 = rng.normal(0.0, np.sqrt(2.0 / feature_dim), (feature_dim, hidden))
        self.b1 = np.zeros(hidden)
        self.w2 = rng.normal(0.0, np.sqrt(2.0 / hidden), (hidden, self.output_dim))
        self.b2 = np.zeros(self.output_dim)
        self.feat_mean = np.zeros(feature_dim)
        self.feat_std = np.ones(feature_dim)

    def set_normalization(self, mean: np.ndarray, std: np.ndarray) -> None:
        """Install feature standardization statistics (from train set)."""
        self.feat_mean = np.asarray(mean, dtype=np.float64)
        self.feat_std = np.where(np.asarray(std) > 1e-9, std, 1.0)

    # ------------------------------------------------------------------
    # forward / backward

    def forward(
        self, features: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Forward pass on standardized inputs.

        Returns ``(logits, hidden_activations, standardized_inputs)``;
        the latter two are retained for the backward pass.
        """
        self._require_initialized()
        x = (features - self.feat_mean) / self.feat_std
        hidden = np.maximum(x @ self.w1 + self.b1, 0.0)
        logits = hidden @ self.w2 + self.b2
        return logits, hidden, x

    def backward(
        self,
        grad_logits: np.ndarray,
        hidden: np.ndarray,
        x: np.ndarray,
    ) -> dict[str, np.ndarray]:
        """Gradients of the loss w.r.t. every parameter."""
        grad_w2 = hidden.T @ grad_logits
        grad_b2 = grad_logits.sum(axis=0)
        grad_hidden = grad_logits @ self.w2.T
        grad_hidden[hidden <= 0.0] = 0.0
        grad_w1 = x.T @ grad_hidden
        grad_b1 = grad_hidden.sum(axis=0)
        return {"w1": grad_w1, "b1": grad_b1, "w2": grad_w2, "b2": grad_b2}

    # ------------------------------------------------------------------
    # structured views of the output tensor

    @staticmethod
    def split_logits(logits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split ``(N, C*5)`` logits into objectness and box channels.

        Returns ``(obj_logits (N, C), box_logits (N, C, 4))``.
        """
        n = logits.shape[0]
        reshaped = logits.reshape(n, N_CLASSES, _PER_CLASS)
        return reshaped[:, :, 0], reshaped[:, :, 1:]

    # ------------------------------------------------------------------
    # inference

    def predict_cells_from_features(
        self, features: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Raw per-cell predictions from precomputed backbone features.

        Accepts one image's features ``(n_cells, D)`` or a stacked
        batch ``(N, n_cells, D)``; the whole stack goes through a
        single forward pass, so batched inference amortizes the matmul
        setup instead of paying it per image.  Returns
        ``(scores (..., n_cells, C), boxes (..., n_cells, C, 4) xyxy)``
        with the leading batch axis mirroring the input.
        """
        features = np.asarray(features, dtype=np.float64)
        batched = features.ndim == 3
        flat = features.reshape(-1, features.shape[-1])
        logits, _, _ = self.forward(flat)
        obj_logits, box_logits = self.split_logits(logits)
        scores = sigmoid(obj_logits)
        boxes_cxcywh = sigmoid(box_logits)
        boxes_xyxy = clip_boxes(
            cxcywh_to_xyxy(boxes_cxcywh.reshape(-1, 4))
        ).reshape(boxes_cxcywh.shape)
        if batched:
            n_images, n_cells = features.shape[0], features.shape[1]
            scores = scores.reshape(n_images, n_cells, N_CLASSES)
            boxes_xyxy = boxes_xyxy.reshape(n_images, n_cells, N_CLASSES, 4)
        return scores, boxes_xyxy

    def predict_cells(self, image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Raw per-cell predictions for one image.

        Returns ``(scores (n_cells, C), boxes (n_cells, C, 4) xyxy)``.
        """
        features = extract_features(image, self.config.feature_config)
        return self.predict_cells_from_features(features)

    def predict_cells_batch(
        self, images: Sequence[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Raw per-cell predictions for an image stack in one forward pass.

        Returns ``(scores (N, n_cells, C), boxes (N, n_cells, C, 4))``
        numerically identical to calling :meth:`predict_cells` per
        image (verified by tier-1 tests).
        """
        if len(images) == 0:
            config = self.config.feature_config
            return (
                np.zeros((0, config.n_cells, N_CLASSES)),
                np.zeros((0, config.n_cells, N_CLASSES, 4)),
            )
        metrics = get_metrics()
        metrics.inc("detect.batch.calls")
        metrics.inc("detect.batch.images", len(images))
        with get_tracer().span("detect.batch", images=len(images)):
            features = np.stack(
                [
                    extract_features(image, self.config.feature_config)
                    for image in images
                ]
            )
            return self.predict_cells_from_features(features)

    def detect(
        self, image: np.ndarray, conf_threshold: float | None = None
    ) -> list[Detection]:
        """Detect objects in one image.

        Decoding is component-based: confident cells of each class are
        grouped into 8-connected components (the analog of NMS for a
        dense grid head) and each component becomes one detection.  The
        component's box blends two estimates — the union of its cells'
        extents and the per-coordinate median of its cells' regressed
        boxes — which is markedly more robust than trusting any single
        cell's regression.
        """
        scores, boxes = self.predict_cells(image)
        return self.decode_cells(scores, boxes, conf_threshold=conf_threshold)

    def detect_batch(
        self,
        images: Sequence[np.ndarray],
        conf_threshold: float | None = None,
    ) -> list[list[Detection]]:
        """Detect objects in an image stack with one batched forward pass.

        Decoding is per image (component labeling does not vectorize
        across images), but the expensive part — standardization and
        the two matmuls — runs once over the whole stack.  Results are
        identical to calling :meth:`detect` per image.
        """
        detections, _ = self.detect_batch_with_scores(
            images, conf_threshold=conf_threshold
        )
        return detections

    @staticmethod
    def indicator_scores(scores: np.ndarray) -> np.ndarray:
        """Per-indicator peak cell score from raw per-cell predictions.

        Reduces ``(..., n_cells, C)`` scores to ``(..., C)`` by taking
        the maximum over cells — the image-level decision evidence the
        cascade router calibrates.  The peak is exactly the quantity
        :meth:`decode_cells` compares against its cutoff, so a margin
        derived from it moves with the detector's own decision rule.
        """
        return np.asarray(scores).max(axis=-2)

    def detect_with_scores(
        self, image: np.ndarray, conf_threshold: float | None = None
    ) -> tuple[list[Detection], np.ndarray]:
        """:meth:`detect` plus the image's per-indicator peak scores.

        The detections are bit-equal to :meth:`detect` — the decoding
        path is shared — and the second element is the ``(C,)`` peak
        score vector (see :meth:`indicator_scores`).
        """
        scores, boxes = self.predict_cells(image)
        return (
            self.decode_cells(scores, boxes, conf_threshold=conf_threshold),
            self.indicator_scores(scores),
        )

    def detect_batch_with_scores(
        self,
        images: Sequence[np.ndarray],
        conf_threshold: float | None = None,
    ) -> tuple[list[list[Detection]], np.ndarray]:
        """:meth:`detect_batch` plus per-image per-indicator peak scores.

        Returns ``(detections, peaks (N, C))``.  The detections are the
        *same objects* :meth:`detect_batch` would return (one shared
        forward + decode), so labels stay bit-equal to the existing
        path; the peaks expose the decision margins without changing
        any existing return type.
        """
        scores, boxes = self.predict_cells_batch(images)
        detections = [
            self.decode_cells(
                scores[index], boxes[index], conf_threshold=conf_threshold
            )
            for index in range(len(images))
        ]
        return detections, self.indicator_scores(scores)

    def decode_cells(
        self,
        scores: np.ndarray,
        boxes: np.ndarray,
        conf_threshold: float | None = None,
    ) -> list[Detection]:
        """Component-based decoding of one image's per-cell predictions."""
        threshold = (
            conf_threshold
            if conf_threshold is not None
            else self.config.conf_threshold
        )
        grid = self.config.grid
        detections: list[Detection] = []
        for class_index, indicator in enumerate(ALL_INDICATORS):
            class_scores = scores[:, class_index].reshape(grid, grid)
            peak = float(class_scores.max())
            cutoff = max(threshold, 0.35 * peak)
            mask = class_scores >= cutoff
            if not mask.any():
                continue
            labels, n_components = _label_components(mask)
            for component in range(n_components):
                rows, cols = np.nonzero(labels == component)
                cell_ids = rows * grid + cols
                component_scores = scores[cell_ids, class_index]
                regressed = boxes[cell_ids, class_index, :]
                median_box = np.median(regressed, axis=0)
                union_box = np.array(
                    [
                        cols.min() / grid,
                        rows.min() / grid,
                        (cols.max() + 1) / grid,
                        (rows.max() + 1) / grid,
                    ]
                )
                blended = clip_boxes(
                    ((union_box + median_box) / 2.0).reshape(1, 4)
                )[0]
                detections.append(
                    Detection(
                        indicator=indicator,
                        box=blended,
                        score=float(component_scores.max()),
                    )
                )
        detections.sort(key=lambda d: -d.score)
        return detections

    # ------------------------------------------------------------------
    # persistence

    def to_dict(self) -> dict:
        """Serialize config + weights to plain JSON-compatible types."""
        self._require_initialized()
        return {
            "config": {
                "grid": self.config.grid,
                "hidden": self.config.hidden,
                "conf_threshold": self.config.conf_threshold,
                "nms_iou": self.config.nms_iou,
                "smooth_features": self.config.smooth_features,
                "context_features": self.config.context_features,
            },
            "w1": self.w1.tolist(),
            "b1": self.b1.tolist(),
            "w2": self.w2.tolist(),
            "b2": self.b2.tolist(),
            "feat_mean": self.feat_mean.tolist(),
            "feat_std": self.feat_std.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "NanoDetector":
        config = ModelConfig(**payload["config"])
        model = cls(config=config)
        model.w1 = np.asarray(payload["w1"], dtype=np.float64)
        model.b1 = np.asarray(payload["b1"], dtype=np.float64)
        model.w2 = np.asarray(payload["w2"], dtype=np.float64)
        model.b2 = np.asarray(payload["b2"], dtype=np.float64)
        model.feat_mean = np.asarray(payload["feat_mean"], dtype=np.float64)
        model.feat_std = np.asarray(payload["feat_std"], dtype=np.float64)
        return model

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "NanoDetector":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def _require_initialized(self) -> None:
        if not self.is_initialized:
            raise RuntimeError(
                "NanoDetector is untrained; call initialize() or load()"
            )
