"""Grid-cell feature extraction — the detector's "backbone".

YOLOv11's convolutional backbone is replaced by a hand-rolled feature
pyramid computed with numpy: the image is divided into an S×S grid and
each cell is summarized by color statistics, gradient/orientation
energy, color-prototype masses (lane-paint yellow, concrete gray,
foliage green, brick, ...) and its own grid position.  The detection
head (``model.py``) is a trained MLP over these per-cell vectors.

The features are deliberately *local and appearance-based* so the
paper's ablations behave faithfully: additive Gaussian noise corrupts
the gradient channels first (Fig. 3), and rotating an image moves sky
color and vertical-pole energy into configurations never seen in
training (Fig. 2).

Two kernels produce the same feature layout (DESIGN.md §14):

* :func:`extract_features` with ``precision="float64"`` runs the
  **fused exact kernel**: one pass over per-image scratch buffers (a
  :class:`~repro.parallel.arena.TensorArena`), stacked blocked
  reductions, and bit-identical output to the original multi-pass
  extractor (kept as :func:`extract_features_legacy` and pinned by
  exact-equality tests plus the golden report fixtures).
* ``precision="float32"`` runs the **fast kernel**: float32 end to
  end with cell reductions expressed as BLAS matrix products
  (pooling-operator matmuls).  It is tolerance-tested against float64
  rather than bit-identical — the fast tier trades the last float of
  precision for several-fold throughput.

:func:`extract_features_batch` drives either kernel over an image
stack while reusing one arena and writing into one preallocated
output tensor.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import NamedTuple

import numpy as np

from ..parallel.arena import TensorArena

#: Default grid resolution (16×16 cells over the image).
DEFAULT_GRID = 16

#: Supported numeric tiers for feature extraction.  ``"int8"`` is
#: accepted as an alias of the float32 backbone — quantization applies
#: to the MLP head (``model.py``), not to feature extraction.
FEATURE_PRECISIONS = ("float64", "float32", "int8")


@dataclass(frozen=True)
class FeatureConfig:
    """Feature extraction settings shared by training and inference.

    ``smooth`` applies a small box blur before any measurement — the
    analog of a CNN's first-layer receptive-field averaging, and the
    main source of the detector's robustness to pixel noise (Fig. 3).
    """

    grid: int = DEFAULT_GRID
    smooth: bool = True
    #: When false the 3×3 neighborhood-context block is zeroed out
    #: (same dimensionality, no information) — the design-ablation
    #: baseline for the "neck" receptive-field growth.
    context: bool = True

    @property
    def n_cells(self) -> int:
        return self.grid * self.grid

    @property
    def dim(self) -> int:
        return FEATURE_DIM


def _feature_dtype(precision: str) -> np.dtype:
    if precision not in FEATURE_PRECISIONS:
        raise ValueError(
            f"unknown precision {precision!r}; expected one of "
            f"{FEATURE_PRECISIONS}"
        )
    return np.dtype(np.float64 if precision == "float64" else np.float32)


def _blocked_view(array: np.ndarray, grid: int) -> np.ndarray:
    """Reshape trailing ``(H, W)`` axes into ``(grid, ch, grid, cw)`` blocks.

    The one trim-and-reshape implementation behind every cell
    reduction: leading axes (channel stacks, batches) pass through
    unchanged, and reducing the returned blocks over ``axis=(-3, -1)``
    visits each cell's ``ch × cw`` elements in the same order as a
    single-channel reduction — which is what keeps stacked reductions
    bit-identical to per-channel loops (see :func:`_cell_reduce_stack`).

    Returns a view when the trailing axes divide evenly by ``grid``;
    a trimmed (copying) reshape otherwise.
    """
    height, width = array.shape[-2:]
    ch = height // grid
    cw = width // grid
    if ch < 1 or cw < 1:
        raise ValueError(
            f"cannot tile {height}x{width} into a {grid}x{grid} grid"
        )
    trimmed = array[..., : ch * grid, : cw * grid]
    return trimmed.reshape(*array.shape[:-2], grid, ch, grid, cw)


def _box_blur(rgb: np.ndarray, radius: int = 1) -> np.ndarray:
    """Separable box blur with edge padding."""
    window = 2 * radius + 1
    padded = np.pad(rgb, ((radius, radius), (0, 0), (0, 0)), mode="edge")
    vertical = sum(
        padded[i : i + rgb.shape[0]] for i in range(window)
    ) / window
    padded = np.pad(
        vertical, ((0, 0), (radius, radius), (0, 0)), mode="edge"
    )
    return sum(padded[:, i : i + rgb.shape[1]] for i in range(window)) / window


def _to_float(image: np.ndarray) -> np.ndarray:
    if image.dtype == np.uint8:
        return image.astype(np.float64) / 255.0
    return image.astype(np.float64)


def _sobel(gray: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Horizontal and vertical Sobel responses (same shape as input)."""
    padded = np.pad(gray, 1, mode="edge")
    gx = (
        padded[:-2, 2:] + 2 * padded[1:-1, 2:] + padded[2:, 2:]
        - padded[:-2, :-2] - 2 * padded[1:-1, :-2] - padded[2:, :-2]
    )
    gy = (
        padded[2:, :-2] + 2 * padded[2:, 1:-1] + padded[2:, 2:]
        - padded[:-2, :-2] - 2 * padded[:-2, 1:-1] - padded[:-2, 2:]
    )
    return gx, gy


def _cell_reduce_stack(channels: np.ndarray, grid: int) -> np.ndarray:
    """Per-cell means of an ``(N, H, W)`` channel stack, ``(grid, grid, N)``.

    One reshaped reduction replacing N separate
    ``_cell_reduce(..., "mean")`` calls.  The channel axis *leads* the
    block axes, so each output cell still reduces the same ``ch × cw``
    elements in the same memory-order pattern as the per-channel call
    — which is what keeps the result bit-identical to the loop it
    replaced (a trailing channel axis changes numpy's pairwise
    summation tree and drifts in the last ulp).
    """
    blocks = _blocked_view(channels, grid)
    return np.moveaxis(blocks.mean(axis=(-3, -1)), 0, -1)


def _cell_reduce(channel: np.ndarray, grid: int, how: str) -> np.ndarray:
    """Reduce an (H, W) channel to per-cell statistics, (grid, grid)."""
    blocks = _blocked_view(channel, grid)
    if how == "mean":
        return blocks.mean(axis=(-3, -1))
    if how == "std":
        return blocks.std(axis=(-3, -1))
    if how == "max":
        return blocks.max(axis=(-3, -1))
    raise ValueError(f"unknown reduction: {how}")


#: Number of gradient-orientation histogram bins.
_N_ORIENT = 6

#: Color-prototype masks computed per pixel, reduced to cell fractions.
_COLOR_NAMES = (
    "yellow_paint",
    "white_paint",
    "dark",
    "foliage",
    "sky",
    "brick",
    "concrete",
    "asphalt",
    "wood",
    "lamp",
)

#: Per-cell channels computed directly from the cell's own pixels.
_LOCAL_DIM = (
    3  # mean RGB
    + 3  # std RGB
    + 2  # mean |gx|, mean |gy|
    + 1  # gradient magnitude std
    + 1  # gradient magnitude max
    + _N_ORIENT  # orientation histogram
    + len(_COLOR_NAMES)  # color prototype fractions
    + 2  # luminance min / max
    + 4  # sub-cell edge centroids (vertical-x, horizontal-y, mag-x, mag-y)
)

#: Local channels + 3×3 neighborhood context of the local channels
#: (the "neck": grows the receptive field so a cell can tell a lamp
#: above a pole from foliage above a tree trunk) + cell position.
FEATURE_DIM = _LOCAL_DIM * 2 + 2

#: Rows of the fused kernel's mean stack: r, g, b, |gx|, mag, |gy|,
#: six orientation bins, ten color masks.
_N_MEAN = 6 + _N_ORIENT + len(_COLOR_NAMES)

#: Luminance projection (ITU-R 601), shared by both kernels.
_GRAY_WEIGHTS = np.array([0.299, 0.587, 0.114])


def _neighborhood_mean(channels: np.ndarray) -> np.ndarray:
    """3×3 box-filtered copy of a ``(grid, grid, D)`` channel stack."""
    padded = np.pad(channels, ((1, 1), (1, 1), (0, 0)), mode="edge")
    total = np.zeros_like(channels)
    for dy in range(3):
        for dx in range(3):
            total += padded[
                dy : dy + channels.shape[0], dx : dx + channels.shape[1]
            ]
    return total / 9.0


def _cell_centroid(
    weight: np.ndarray, grid: int, axis: str
) -> np.ndarray:
    """Weight-centroid position within each cell along one axis, in [0, 1].

    Gives the detection head sub-cell localization: e.g. the x position
    of a thin pole inside its cell comes from the vertical-edge-energy
    centroid.  Cells with no energy report the neutral midpoint 0.5.
    """
    blocks = _blocked_view(weight, grid)
    ch, cw = blocks.shape[-3], blocks.shape[-1]
    if axis == "x":
        ramp = (np.arange(cw) + 0.5) / cw
        weighted = (blocks * ramp[None, None, None, :]).sum(axis=(-3, -1))
    elif axis == "y":
        ramp = (np.arange(ch) + 0.5) / ch
        weighted = (blocks * ramp[None, :, None, None]).sum(axis=(-3, -1))
    else:
        raise ValueError(f"axis must be 'x' or 'y': {axis}")
    totals = blocks.sum(axis=(-3, -1))
    return np.where(totals > 1e-9, weighted / (totals + 1e-12), 0.5)


def _color_mask_stack(r, g, b, value, spread) -> dict[str, np.ndarray]:
    """The ten color-prototype predicates from channel/derived planes.

    Shared by the legacy extractor and both fused kernels: comparisons
    are exact at any dtype, so as long as the inputs match, the masks
    match.
    """
    return {
        "yellow_paint": (r > 0.55) & (g > 0.45) & (b < 0.38) & (r - b > 0.25),
        "white_paint": (value > 0.82) & (spread < 0.12),
        "dark": value < 0.18,
        "foliage": (g > r + 0.05) & (g > b + 0.05) & (g > 0.15),
        "sky": (b > r + 0.05) & (b > 0.5),
        "brick": (r > g + 0.08) & (g > b) & (r > 0.3) & (r < 0.8),
        "concrete": (spread < 0.08) & (value > 0.45) & (value < 0.82),
        "asphalt": (spread < 0.08) & (value > 0.12) & (value <= 0.35),
        "wood": (r > g + 0.04) & (g > b + 0.02) & (value < 0.45) & (value > 0.12),
        "lamp": (value > 0.9) & (r > 0.85) & (g > 0.8) & (b < 0.85),
    }


def _color_masks(rgb: np.ndarray) -> dict[str, np.ndarray]:
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
    value = rgb.max(axis=-1)
    spread = value - rgb.min(axis=-1)
    return _color_mask_stack(r, g, b, value, spread)


@lru_cache(maxsize=32)
def _position_channels(grid: int) -> tuple[np.ndarray, np.ndarray]:
    """Memoized, read-only (rows, cols) position planes for one grid."""
    rows = np.repeat(np.arange(grid), grid).reshape(grid, grid) / (grid - 1)
    cols = np.tile(np.arange(grid), grid).reshape(grid, grid) / (grid - 1)
    rows.setflags(write=False)
    cols.setflags(write=False)
    return rows, cols


def _validate_image(image: np.ndarray, grid: int) -> tuple[int, int]:
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) image, got {image.shape}")
    height, width = image.shape[:2]
    if height < grid or width < grid:
        raise ValueError(
            f"image {height}x{width} smaller than the {grid}x{grid} grid"
        )
    return height, width


def extract_features_legacy(
    image: np.ndarray, config: FeatureConfig | None = None
) -> np.ndarray:
    """The original multi-pass extractor, kept as the numeric reference.

    ~30 independent passes over the image: one :func:`_cell_reduce`
    call per channel/statistic, python-level ``sum`` loops in
    :func:`_box_blur`, and per-bin orientation masking.  The fused
    float64 kernel is bit-identical to this function (regression-tested
    on random images); the perf bench measures its speedup against it.
    """
    if config is None:
        config = FeatureConfig()
    grid = config.grid
    image = np.asarray(image)
    _validate_image(image, grid)
    rgb = _to_float(image)
    if config.smooth:
        rgb = _box_blur(rgb)

    gray = rgb @ _GRAY_WEIGHTS
    gx, gy = _sobel(gray)
    mag = np.hypot(gx, gy)

    columns = []
    for channel_index in range(3):
        columns.append(_cell_reduce(rgb[..., channel_index], grid, "mean"))
    for channel_index in range(3):
        columns.append(_cell_reduce(rgb[..., channel_index], grid, "std"))
    columns.append(_cell_reduce(np.abs(gx), grid, "mean"))
    columns.append(_cell_reduce(np.abs(gy), grid, "mean"))
    columns.append(_cell_reduce(mag, grid, "std"))
    columns.append(_cell_reduce(mag, grid, "max"))

    # Orientation histogram: bin gradient angle (mod pi), weight by
    # magnitude, normalize per cell.  All bins reduce in one pass.
    angle = np.mod(np.arctan2(gy, gx), np.pi)
    bin_index = np.minimum(
        (angle / np.pi * _N_ORIENT).astype(int), _N_ORIENT - 1
    )
    weighted = np.where(
        bin_index[None, :, :] == np.arange(_N_ORIENT)[:, None, None],
        mag[None, :, :],
        0.0,
    )
    orient = _cell_reduce_stack(weighted, grid)
    totals = orient.sum(axis=-1, keepdims=True)
    orient = np.where(totals > 1e-9, orient / (totals + 1e-9), 0.0)
    for b in range(_N_ORIENT):
        columns.append(orient[..., b])

    masks = _color_masks(rgb)
    color_fractions = _cell_reduce_stack(
        np.stack([masks[name] for name in _COLOR_NAMES]).astype(np.float64),
        grid,
    )
    for channel_index in range(len(_COLOR_NAMES)):
        columns.append(color_fractions[..., channel_index])

    columns.append(_cell_reduce(gray, grid, "max"))
    columns.append(1.0 - _cell_reduce(1.0 - gray, grid, "max"))  # min

    abs_gx = np.abs(gx)
    abs_gy = np.abs(gy)
    columns.append(_cell_centroid(abs_gx, grid, "x"))
    columns.append(_cell_centroid(abs_gy, grid, "y"))
    columns.append(_cell_centroid(mag, grid, "x"))
    columns.append(_cell_centroid(mag, grid, "y"))

    local = np.stack(columns, axis=-1)  # (grid, grid, _LOCAL_DIM)
    if config.context:
        context = _neighborhood_mean(local)
    else:
        context = np.zeros_like(local)

    rows = np.repeat(np.arange(grid), grid).reshape(grid, grid) / (grid - 1)
    cols = np.tile(np.arange(grid), grid).reshape(grid, grid) / (grid - 1)
    position = np.stack([rows, cols], axis=-1)

    stacked = np.concatenate([local, context, position], axis=-1).reshape(
        config.n_cells, FEATURE_DIM
    )
    if stacked.shape != (config.n_cells, FEATURE_DIM):
        raise AssertionError(
            f"feature shape mismatch: {stacked.shape} != "
            f"({config.n_cells}, {FEATURE_DIM})"
        )
    return stacked


# ----------------------------------------------------------------------
# fused kernels


def _edge_pad_rows(dst: np.ndarray, src: np.ndarray) -> None:
    """Fill ``dst`` (src padded by one edge row top and bottom)."""
    dst[1:-1] = src
    dst[0] = src[0]
    dst[-1] = src[-1]


def _fused_front_end(image, config, arena, tag, dtype):
    """Shared elementwise stage of both fused kernels.

    Converts/blurs the image, computes gray/Sobel/magnitude/orientation
    planes and the color masks, and returns ``(ms, gray, gx, gy, tmp)``
    where ``ms`` is the ``(_N_MEAN, H, W)`` mean stack with rows
    ``[r, g, b, |gx|, mag, |gy|, orient×6, colors×10]`` — every row a
    contiguous plane ready for blocked or matmul reduction.

    Each float64 operation replicates the legacy extractor's exact
    expression and evaluation order (same ufuncs, same operand order),
    only redirected into arena buffers — that is the entire
    bit-identity argument, checked by the exact-equality tests.
    """
    height, width = image.shape[:2]
    rgb = arena.take(f"{tag}.rgb", (height, width, 3), dtype)
    if image.dtype == np.uint8:
        np.divide(image, 255.0, out=rgb)
    else:
        rgb[...] = image

    if config.smooth:
        # Legacy _box_blur: edge pad rows, (p0+p1+p2)/3, then columns.
        pad_rows = arena.take(f"{tag}.padrows", (height + 2, width, 3), dtype)
        _edge_pad_rows(pad_rows, rgb)
        vertical = arena.take(f"{tag}.vertical", (height, width, 3), dtype)
        np.add(pad_rows[0:height], pad_rows[1 : height + 1], out=vertical)
        np.add(vertical, pad_rows[2 : height + 2], out=vertical)
        np.divide(vertical, 3.0, out=vertical)
        pad_cols = arena.take(f"{tag}.padcols", (height, width + 2, 3), dtype)
        pad_cols[:, 1:-1] = vertical
        pad_cols[:, 0] = vertical[:, 0]
        pad_cols[:, -1] = vertical[:, -1]
        np.add(pad_cols[:, 0:width], pad_cols[:, 1 : width + 1], out=rgb)
        np.add(rgb, pad_cols[:, 2 : width + 2], out=rgb)
        np.divide(rgb, 3.0, out=rgb)

    gray = arena.take(f"{tag}.gray", (height, width), dtype)
    np.matmul(rgb, _GRAY_WEIGHTS.astype(dtype), out=gray)

    # Sobel on an edge-padded copy, replicating _sobel's exact
    # left-to-right expression order.
    gp = arena.take(f"{tag}.graypad", (height + 2, width + 2), dtype)
    gp[1:-1, 1:-1] = gray
    gp[0, 1:-1] = gray[0]
    gp[-1, 1:-1] = gray[-1]
    gp[:, 0] = gp[:, 1]
    gp[:, -1] = gp[:, -2]
    gx = arena.take(f"{tag}.gx", (height, width), dtype)
    gy = arena.take(f"{tag}.gy", (height, width), dtype)
    tmp = arena.take(f"{tag}.tmp", (height, width), dtype)
    np.multiply(2.0, gp[1:-1, 2:], out=tmp)
    np.add(gp[:-2, 2:], tmp, out=gx)
    np.add(gx, gp[2:, 2:], out=gx)
    np.subtract(gx, gp[:-2, :-2], out=gx)
    np.multiply(2.0, gp[1:-1, :-2], out=tmp)
    np.subtract(gx, tmp, out=gx)
    np.subtract(gx, gp[2:, :-2], out=gx)
    np.multiply(2.0, gp[2:, 1:-1], out=tmp)
    np.add(gp[2:, :-2], tmp, out=gy)
    np.add(gy, gp[2:, 2:], out=gy)
    np.subtract(gy, gp[:-2, :-2], out=gy)
    np.multiply(2.0, gp[:-2, 1:-1], out=tmp)
    np.subtract(gy, tmp, out=gy)
    np.subtract(gy, gp[:-2, 2:], out=gy)

    ms = arena.take(f"{tag}.meanstack", (_N_MEAN, height, width), dtype)
    r, g, b = ms[0], ms[1], ms[2]
    r[...] = rgb[..., 0]
    g[...] = rgb[..., 1]
    b[...] = rgb[..., 2]
    abs_gx, mag, abs_gy = ms[3], ms[4], ms[5]
    np.abs(gx, out=abs_gx)
    np.abs(gy, out=abs_gy)
    np.hypot(gx, gy, out=mag)

    # angle = np.mod(arctan2(gy, gx), pi) without the (slow) modulo
    # ufunc: arctan2 lands in [-pi, pi], where mod reduces to "add pi
    # when negative" — with two bit-exactness corners: an input of
    # exactly +pi maps to 0 (fmod), while a *sum* that rounds up to pi
    # stays pi (numpy's mod does not post-correct the addition).
    angle = arena.take(f"{tag}.angle", (height, width), dtype)
    np.arctan2(gy, gx, out=angle)
    flags = arena.take(f"{tag}.flags", (height, width), bool)
    np.equal(angle, np.pi, out=flags)
    angle[flags] = 0.0
    np.less(angle, 0.0, out=flags)
    np.add(angle, np.pi, out=tmp)
    np.copyto(angle, tmp, where=flags)

    # Legacy: (angle / pi * N).astype(int) then clamp.  Truncation to
    # int8 matches astype(int) for the value range [0, N].
    bins = arena.take(f"{tag}.bins", (height, width), np.int8)
    np.divide(angle, np.pi, out=tmp)
    np.multiply(tmp, float(_N_ORIENT), out=tmp)
    bins[...] = tmp
    np.minimum(bins, _N_ORIENT - 1, out=bins)
    for orient_bin in range(_N_ORIENT):
        np.equal(bins, orient_bin, out=flags)
        # bool × mag ≡ where(bin == o, mag, 0.0): mag is finite and
        # non-negative, so False rows give exactly +0.0.
        np.multiply(flags, mag, out=ms[6 + orient_bin])

    value = arena.take(f"{tag}.value", (height, width), dtype)
    spread = arena.take(f"{tag}.spread", (height, width), dtype)
    np.maximum(r, g, out=value)
    np.maximum(value, b, out=value)
    np.minimum(r, g, out=spread)
    np.minimum(spread, b, out=spread)
    np.subtract(value, spread, out=spread)
    masks = _color_mask_stack(r, g, b, value, spread)
    for color_index, name in enumerate(_COLOR_NAMES):
        ms[6 + _N_ORIENT + color_index][...] = masks[name]

    return ms, gray, gx, gy, tmp


def _assemble_output(
    out3, config, means, stds_rgb, mag_std, mag_max, gray_max, gray_min,
    wx, wy, tot3, arena, tag, dtype,
):
    """Common back end: column layout, orientation norm, context, position.

    ``means`` is the ``(_N_MEAN, grid, grid)`` blocked mean stack;
    ``wx``/``wy``/``tot3`` are the centroid weighted sums and totals
    for weights ``[|gx|, mag]`` (x), ``[mag, |gy|]`` (y) and
    ``[|gx|, mag, |gy|]``.
    """
    grid = config.grid
    local = out3[:, :, :_LOCAL_DIM]
    for channel in range(3):
        local[..., channel] = means[channel]
        local[..., 3 + channel] = stds_rgb[channel]
    local[..., 6] = means[3]  # mean |gx|
    local[..., 7] = means[5]  # mean |gy|
    local[..., 8] = mag_std
    local[..., 9] = mag_max

    orient = means[6 : 6 + _N_ORIENT]
    totals = orient.sum(axis=0)
    ok = totals > 1e-9
    denom = totals + 1e-9
    for orient_bin in range(_N_ORIENT):
        local[..., 10 + orient_bin] = np.where(
            ok, orient[orient_bin] / denom, 0.0
        )
    for color_index in range(len(_COLOR_NAMES)):
        local[..., 16 + color_index] = means[6 + _N_ORIENT + color_index]
    local[..., 26] = gray_max
    local[..., 27] = gray_min

    # Centroids: tot3 rows are [|gx|, mag, |gy|]; wx rows [|gx|, mag]
    # (x-weighted); wy rows [mag, |gy|] (y-weighted).
    local[..., 28] = np.where(tot3[0] > 1e-9, wx[0] / (tot3[0] + 1e-12), 0.5)
    local[..., 29] = np.where(tot3[2] > 1e-9, wy[1] / (tot3[2] + 1e-12), 0.5)
    local[..., 30] = np.where(tot3[1] > 1e-9, wx[1] / (tot3[1] + 1e-12), 0.5)
    local[..., 31] = np.where(tot3[1] > 1e-9, wy[0] / (tot3[1] + 1e-12), 0.5)

    context = out3[:, :, _LOCAL_DIM : 2 * _LOCAL_DIM]
    if config.context:
        # Replicates _neighborhood_mean: edge pad, nine-term
        # accumulation in (dy, dx) order, divide by 9.
        padded = arena.take(
            f"{tag}.ctxpad", (grid + 2, grid + 2, _LOCAL_DIM), dtype
        )
        padded[1:-1, 1:-1] = local
        padded[0, 1:-1] = local[0]
        padded[-1, 1:-1] = local[-1]
        padded[:, 0] = padded[:, 1]
        padded[:, -1] = padded[:, -2]
        total = arena.zeros(f"{tag}.ctxtotal", (grid, grid, _LOCAL_DIM), dtype)
        for dy in range(3):
            for dx in range(3):
                total += padded[dy : dy + grid, dx : dx + grid]
        np.divide(total, 9.0, out=context)
    else:
        context[...] = 0.0

    rows, cols = _position_channels(grid)
    out3[:, :, -2] = rows
    out3[:, :, -1] = cols


def _fused_features_f64(image, config, arena, out) -> None:
    """Fused exact kernel: bit-identical to :func:`extract_features_legacy`."""
    grid = config.grid
    ms, gray, _gx, _gy, tmp = _fused_front_end(
        image, config, arena, "f64", np.float64
    )
    out3 = out.reshape(grid, grid, FEATURE_DIM)

    blocked = _blocked_view(ms, grid)
    means = blocked.mean(axis=(-3, -1))  # row 4 (mag) unused, costs 1/22
    stds_rgb = _blocked_view(ms[0:3], grid).std(axis=(-3, -1))
    mag_blocks = _blocked_view(ms[4], grid)
    mag_std = mag_blocks.std(axis=(-3, -1))
    mag_max = mag_blocks.max(axis=(-3, -1))
    gray_max = _blocked_view(gray, grid).max(axis=(-3, -1))
    np.subtract(1.0, gray, out=tmp)
    gray_min = 1.0 - _blocked_view(tmp, grid).max(axis=(-3, -1))

    # Centroid sums, stacked with a leading weight axis so each
    # reduction matches _cell_centroid's per-weight call bit for bit.
    ch = image.shape[0] // grid
    cw = image.shape[1] // grid
    ramp_x = (np.arange(cw) + 0.5) / cw
    ramp_y = (np.arange(ch) + 0.5) / ch
    tot3 = _blocked_view(ms[3:6], grid).sum(axis=(-3, -1))
    product = arena.take("f64.centprod", (2, ch * grid, cw * grid))
    product_blocks = product.reshape(2, grid, ch, grid, cw)
    np.multiply(_blocked_view(ms[3:5], grid), ramp_x, out=product_blocks)
    wx = product_blocks.sum(axis=(-3, -1))
    np.multiply(
        _blocked_view(ms[4:6], grid),
        ramp_y.reshape(-1, 1, 1),
        out=product_blocks,
    )
    wy = product_blocks.sum(axis=(-3, -1))

    _assemble_output(
        out3, config, means, stds_rgb, mag_std, mag_max, gray_max, gray_min,
        wx, wy, tot3, arena, "f64", np.float64,
    )


class _PoolingOperators(NamedTuple):
    """Dense pooling matrices turning cell reductions into matmuls."""

    row_mean: np.ndarray  # (grid, Ht): averages each cell's rows
    row_sum: np.ndarray  # (grid, Ht)
    row_ramp: np.ndarray  # (grid, Ht): y-ramp-weighted row sums
    col_mean: np.ndarray  # (Wt, grid)
    col_sum: np.ndarray  # (Wt, grid)
    col_ramp: np.ndarray  # (Wt, grid): x-ramp-weighted column sums
    trim: tuple[int, int]  # (Ht, Wt)


@lru_cache(maxsize=16)
def _pooling_operators(height: int, width: int, grid: int) -> _PoolingOperators:
    """Memoized float32 pooling matrices for one image/grid geometry.

    A blocked mean over cells factorizes into two matrix products
    (rows then columns); BLAS sgemm runs those several times faster
    than a strided multi-axis reduction, which is the fast kernel's
    main structural win.
    """
    ch = height // grid
    cw = width // grid
    ht, wt = ch * grid, cw * grid
    row_sum = np.zeros((grid, ht), dtype=np.float32)
    row_ramp = np.zeros((grid, ht), dtype=np.float32)
    ramp_y = ((np.arange(ch) + 0.5) / ch).astype(np.float32)
    for cell in range(grid):
        row_sum[cell, cell * ch : (cell + 1) * ch] = 1.0
        row_ramp[cell, cell * ch : (cell + 1) * ch] = ramp_y
    col_sum = np.zeros((wt, grid), dtype=np.float32)
    col_ramp = np.zeros((wt, grid), dtype=np.float32)
    ramp_x = ((np.arange(cw) + 0.5) / cw).astype(np.float32)
    for cell in range(grid):
        col_sum[cell * cw : (cell + 1) * cw, cell] = 1.0
        col_ramp[cell * cw : (cell + 1) * cw, cell] = ramp_x
    row_mean = row_sum / np.float32(ch)
    col_mean = col_sum / np.float32(cw)
    for array in (row_mean, row_sum, row_ramp, col_mean, col_sum, col_ramp):
        array.setflags(write=False)
    return _PoolingOperators(
        row_mean, row_sum, row_ramp, col_mean, col_sum, col_ramp, (ht, wt)
    )


def _fused_features_f32(image, config, arena, out) -> None:
    """Fast float32 kernel: tolerance-equal to float64, sgemm reductions."""
    grid = config.grid
    height, width = image.shape[:2]
    ms, gray, _gx, _gy, _tmp = _fused_front_end(
        image, config, arena, "f32", np.float32
    )
    out3 = out.reshape(grid, grid, FEATURE_DIM)
    ops = _pooling_operators(height, width, grid)
    ht, wt = ops.trim
    stack = ms if (ht, wt) == (height, width) else ms[:, :ht, :wt]

    # Means for all rows: (N*Ht, Wt) @ (Wt, grid) then (grid, Ht) @ ·.
    col_pooled = arena.take("f32.colpool", (_N_MEAN, ht, grid), np.float32)
    np.matmul(
        stack.reshape(_N_MEAN * ht, wt),
        ops.col_mean,
        out=col_pooled.reshape(_N_MEAN * ht, grid),
    )
    means = arena.take("f32.means", (_N_MEAN, grid, grid), np.float32)
    np.matmul(ops.row_mean, col_pooled, out=means)

    # Stds for r, g, b, mag via E[x²] − mean² on the contiguous slab
    # rows 0..4 (row 3, |gx|, is computed and discarded).
    squares = arena.take("f32.squares", (5, ht, wt), np.float32)
    np.multiply(stack[0:5], stack[0:5], out=squares)
    sq_col = arena.take("f32.sqcol", (5, ht, grid), np.float32)
    np.matmul(
        squares.reshape(5 * ht, wt),
        ops.col_mean,
        out=sq_col.reshape(5 * ht, grid),
    )
    second_moment = arena.take("f32.m2", (5, grid, grid), np.float32)
    np.matmul(ops.row_mean, sq_col, out=second_moment)
    variance = second_moment
    np.subtract(second_moment, means[0:5] * means[0:5], out=variance)
    np.maximum(variance, 0.0, out=variance)
    np.sqrt(variance, out=variance)
    stds_rgb = variance[0:3]
    mag_std = variance[4]

    mag_blocks = _blocked_view(stack[4], grid)
    mag_max = mag_blocks.max(axis=(-3, -1))
    gray_trim = gray if (ht, wt) == (height, width) else gray[:ht, :wt]
    gray_blocks = _blocked_view(gray_trim, grid)
    gray_max = gray_blocks.max(axis=(-3, -1))
    # Tolerance tier: a direct blocked min instead of 1 − max(1 − g).
    gray_min = gray_blocks.min(axis=(-3, -1))

    # Centroids: row-sum once for [|gx|, mag, |gy|], then one sgemm per
    # weighted/unweighted column reduction.
    row_pooled = arena.take("f32.rowpool", (3, grid, wt), np.float32)
    np.matmul(ops.row_sum, stack[3:6], out=row_pooled)
    tot3 = arena.take("f32.tot3", (3, grid, grid), np.float32)
    np.matmul(row_pooled, ops.col_sum, out=tot3)
    wx = arena.take("f32.wx", (2, grid, grid), np.float32)
    np.matmul(row_pooled[0:2], ops.col_ramp, out=wx)
    wy_rows = arena.take("f32.wyrows", (2, grid, wt), np.float32)
    np.matmul(ops.row_ramp, stack[4:6], out=wy_rows)
    wy = arena.take("f32.wy", (2, grid, grid), np.float32)
    np.matmul(wy_rows, ops.col_sum, out=wy)

    _assemble_output(
        out3, config, means, stds_rgb, mag_std, mag_max, gray_max, gray_min,
        wx, wy, tot3, arena, "f32", np.float32,
    )


def extract_features(
    image: np.ndarray,
    config: FeatureConfig | None = None,
    *,
    precision: str = "float64",
    arena: TensorArena | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Per-cell feature matrix of shape ``(grid*grid, FEATURE_DIM)``.

    Cells are ordered row-major (top-left first).  Accepts uint8 or
    float RGB images of any square-ish resolution ≥ the grid size.

    ``precision`` picks the kernel tier: ``"float64"`` (default) is
    bit-identical to the original extractor; ``"float32"`` (and its
    alias ``"int8"``, whose quantization lives in the MLP head) runs
    the BLAS-pooled fast kernel, tolerance-equal to float64.  ``arena``
    supplies reusable scratch buffers — pass one when extracting many
    images to stop per-image reallocation.  ``out``, when given, must
    be a C-contiguous ``(n_cells, FEATURE_DIM)`` array of the tier's
    dtype and is returned filled.
    """
    if config is None:
        config = FeatureConfig()
    dtype = _feature_dtype(precision)
    image = np.asarray(image)
    _validate_image(image, config.grid)
    if arena is None:
        arena = TensorArena()
    if out is None:
        out = np.empty((config.n_cells, FEATURE_DIM), dtype=dtype)
    elif out.shape != (config.n_cells, FEATURE_DIM) or out.dtype != dtype:
        raise ValueError(
            f"out must be ({config.n_cells}, {FEATURE_DIM}) {dtype}, "
            f"got {out.shape} {out.dtype}"
        )
    if dtype == np.float64:
        _fused_features_f64(image, config, arena, out)
    else:
        _fused_features_f32(image, config, arena, out)
    return out


def extract_features_batch(
    images,
    config: FeatureConfig | None = None,
    *,
    precision: str = "float64",
    arena: TensorArena | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Feature tensors for an image stack, ``(N, n_cells, FEATURE_DIM)``.

    The batched entry point behind ``predict_cells_batch`` and tensor
    building: one arena's scratch buffers serve every image and each
    image's features are written straight into the (preallocated)
    output stack — no per-image allocation, no ``np.stack`` copy.
    Row ``i`` is bit-identical to ``extract_features(images[i], ...)``
    at the same precision.
    """
    if config is None:
        config = FeatureConfig()
    dtype = _feature_dtype(precision)
    n_images = len(images)
    if out is None:
        out = np.empty((n_images, config.n_cells, FEATURE_DIM), dtype=dtype)
    elif out.shape != (n_images, config.n_cells, FEATURE_DIM) or (
        out.dtype != dtype
    ):
        raise ValueError(
            f"out must be ({n_images}, {config.n_cells}, {FEATURE_DIM}) "
            f"{dtype}, got {out.shape} {out.dtype}"
        )
    if arena is None:
        arena = TensorArena()
    for index, image in enumerate(images):
        extract_features(
            image, config, precision=precision, arena=arena, out=out[index]
        )
    return out


@lru_cache(maxsize=32)
def _cell_centers_cached(grid: int) -> np.ndarray:
    step = 1.0 / grid
    ys, xs = np.mgrid[0:grid, 0:grid]
    centers = np.stack(
        [(xs + 0.5) * step, (ys + 0.5) * step], axis=-1
    ).reshape(-1, 2)
    centers.setflags(write=False)
    return centers


@lru_cache(maxsize=32)
def _cell_bounds_cached(grid: int) -> np.ndarray:
    step = 1.0 / grid
    ys, xs = np.mgrid[0:grid, 0:grid]
    bounds = np.stack(
        [xs * step, ys * step, (xs + 1) * step, (ys + 1) * step], axis=-1
    ).reshape(-1, 4)
    bounds.setflags(write=False)
    return bounds


def cell_centers(grid: int = DEFAULT_GRID) -> np.ndarray:
    """Normalized (x, y) centers of every grid cell, row-major.

    Memoized per grid size (callers like ``assign_targets`` ask once
    per annotation); the returned array is read-only — copy to mutate.
    """
    return _cell_centers_cached(int(grid))


def cell_bounds(grid: int = DEFAULT_GRID) -> np.ndarray:
    """Normalized xyxy bounds of every grid cell, row-major.

    Memoized per grid size; the returned array is read-only.
    """
    return _cell_bounds_cached(int(grid))
