"""Grid-cell feature extraction — the detector's "backbone".

YOLOv11's convolutional backbone is replaced by a hand-rolled feature
pyramid computed with numpy: the image is divided into an S×S grid and
each cell is summarized by color statistics, gradient/orientation
energy, color-prototype masses (lane-paint yellow, concrete gray,
foliage green, brick, ...) and its own grid position.  The detection
head (``model.py``) is a trained MLP over these per-cell vectors.

The features are deliberately *local and appearance-based* so the
paper's ablations behave faithfully: additive Gaussian noise corrupts
the gradient channels first (Fig. 3), and rotating an image moves sky
color and vertical-pole energy into configurations never seen in
training (Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default grid resolution (16×16 cells over the image).
DEFAULT_GRID = 16


@dataclass(frozen=True)
class FeatureConfig:
    """Feature extraction settings shared by training and inference.

    ``smooth`` applies a small box blur before any measurement — the
    analog of a CNN's first-layer receptive-field averaging, and the
    main source of the detector's robustness to pixel noise (Fig. 3).
    """

    grid: int = DEFAULT_GRID
    smooth: bool = True
    #: When false the 3×3 neighborhood-context block is zeroed out
    #: (same dimensionality, no information) — the design-ablation
    #: baseline for the "neck" receptive-field growth.
    context: bool = True

    @property
    def n_cells(self) -> int:
        return self.grid * self.grid

    @property
    def dim(self) -> int:
        return FEATURE_DIM


def _box_blur(rgb: np.ndarray, radius: int = 1) -> np.ndarray:
    """Separable box blur with edge padding."""
    window = 2 * radius + 1
    padded = np.pad(rgb, ((radius, radius), (0, 0), (0, 0)), mode="edge")
    vertical = sum(
        padded[i : i + rgb.shape[0]] for i in range(window)
    ) / window
    padded = np.pad(
        vertical, ((0, 0), (radius, radius), (0, 0)), mode="edge"
    )
    return sum(padded[:, i : i + rgb.shape[1]] for i in range(window)) / window


def _to_float(image: np.ndarray) -> np.ndarray:
    if image.dtype == np.uint8:
        return image.astype(np.float64) / 255.0
    return image.astype(np.float64)


def _sobel(gray: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Horizontal and vertical Sobel responses (same shape as input)."""
    padded = np.pad(gray, 1, mode="edge")
    gx = (
        padded[:-2, 2:] + 2 * padded[1:-1, 2:] + padded[2:, 2:]
        - padded[:-2, :-2] - 2 * padded[1:-1, :-2] - padded[2:, :-2]
    )
    gy = (
        padded[2:, :-2] + 2 * padded[2:, 1:-1] + padded[2:, 2:]
        - padded[:-2, :-2] - 2 * padded[:-2, 1:-1] - padded[:-2, 2:]
    )
    return gx, gy


def _cell_reduce_stack(channels: np.ndarray, grid: int) -> np.ndarray:
    """Per-cell means of an ``(N, H, W)`` channel stack, ``(grid, grid, N)``.

    One reshaped reduction replacing N separate
    ``_cell_reduce(..., "mean")`` calls.  The channel axis *leads* the
    block axes, so each output cell still reduces the same ``ch × cw``
    elements in the same memory-order pattern as the per-channel call
    — which is what keeps the result bit-identical to the loop it
    replaced (a trailing channel axis changes numpy's pairwise
    summation tree and drifts in the last ulp).
    """
    n, height, width = channels.shape
    ch = height // grid
    cw = width // grid
    trimmed = channels[:, : ch * grid, : cw * grid]
    blocks = trimmed.reshape(n, grid, ch, grid, cw)
    return np.moveaxis(blocks.mean(axis=(2, 4)), 0, -1)


def _cell_reduce(channel: np.ndarray, grid: int, how: str) -> np.ndarray:
    """Reduce an (H, W) channel to per-cell statistics, (grid, grid)."""
    height, width = channel.shape
    ch = height // grid
    cw = width // grid
    trimmed = channel[: ch * grid, : cw * grid]
    blocks = trimmed.reshape(grid, ch, grid, cw)
    if how == "mean":
        return blocks.mean(axis=(1, 3))
    if how == "std":
        return blocks.std(axis=(1, 3))
    if how == "max":
        return blocks.max(axis=(1, 3))
    raise ValueError(f"unknown reduction: {how}")


#: Number of gradient-orientation histogram bins.
_N_ORIENT = 6

#: Color-prototype masks computed per pixel, reduced to cell fractions.
_COLOR_NAMES = (
    "yellow_paint",
    "white_paint",
    "dark",
    "foliage",
    "sky",
    "brick",
    "concrete",
    "asphalt",
    "wood",
    "lamp",
)

#: Per-cell channels computed directly from the cell's own pixels.
_LOCAL_DIM = (
    3  # mean RGB
    + 3  # std RGB
    + 2  # mean |gx|, mean |gy|
    + 1  # gradient magnitude std
    + 1  # gradient magnitude max
    + _N_ORIENT  # orientation histogram
    + len(_COLOR_NAMES)  # color prototype fractions
    + 2  # luminance min / max
    + 4  # sub-cell edge centroids (vertical-x, horizontal-y, mag-x, mag-y)
)

#: Local channels + 3×3 neighborhood context of the local channels
#: (the "neck": grows the receptive field so a cell can tell a lamp
#: above a pole from foliage above a tree trunk) + cell position.
FEATURE_DIM = _LOCAL_DIM * 2 + 2


def _neighborhood_mean(channels: np.ndarray) -> np.ndarray:
    """3×3 box-filtered copy of a ``(grid, grid, D)`` channel stack."""
    padded = np.pad(channels, ((1, 1), (1, 1), (0, 0)), mode="edge")
    total = np.zeros_like(channels)
    for dy in range(3):
        for dx in range(3):
            total += padded[
                dy : dy + channels.shape[0], dx : dx + channels.shape[1]
            ]
    return total / 9.0


def _cell_centroid(
    weight: np.ndarray, grid: int, axis: str
) -> np.ndarray:
    """Weight-centroid position within each cell along one axis, in [0, 1].

    Gives the detection head sub-cell localization: e.g. the x position
    of a thin pole inside its cell comes from the vertical-edge-energy
    centroid.  Cells with no energy report the neutral midpoint 0.5.
    """
    height, width = weight.shape
    ch = height // grid
    cw = width // grid
    trimmed = weight[: ch * grid, : cw * grid]
    blocks = trimmed.reshape(grid, ch, grid, cw)
    if axis == "x":
        ramp = (np.arange(cw) + 0.5) / cw
        weighted = (blocks * ramp[None, None, None, :]).sum(axis=(1, 3))
    elif axis == "y":
        ramp = (np.arange(ch) + 0.5) / ch
        weighted = (blocks * ramp[None, :, None, None]).sum(axis=(1, 3))
    else:
        raise ValueError(f"axis must be 'x' or 'y': {axis}")
    totals = blocks.sum(axis=(1, 3))
    return np.where(totals > 1e-9, weighted / (totals + 1e-12), 0.5)


def _color_masks(rgb: np.ndarray) -> dict[str, np.ndarray]:
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
    value = rgb.max(axis=-1)
    spread = value - rgb.min(axis=-1)
    return {
        "yellow_paint": (r > 0.55) & (g > 0.45) & (b < 0.38) & (r - b > 0.25),
        "white_paint": (value > 0.82) & (spread < 0.12),
        "dark": value < 0.18,
        "foliage": (g > r + 0.05) & (g > b + 0.05) & (g > 0.15),
        "sky": (b > r + 0.05) & (b > 0.5),
        "brick": (r > g + 0.08) & (g > b) & (r > 0.3) & (r < 0.8),
        "concrete": (spread < 0.08) & (value > 0.45) & (value < 0.82),
        "asphalt": (spread < 0.08) & (value > 0.12) & (value <= 0.35),
        "wood": (r > g + 0.04) & (g > b + 0.02) & (value < 0.45) & (value > 0.12),
        "lamp": (value > 0.9) & (r > 0.85) & (g > 0.8) & (b < 0.85),
    }


def extract_features(
    image: np.ndarray, config: FeatureConfig | None = None
) -> np.ndarray:
    """Per-cell feature matrix of shape ``(grid*grid, FEATURE_DIM)``.

    Cells are ordered row-major (top-left first).  Accepts uint8 or
    float RGB images of any square-ish resolution ≥ the grid size.
    """
    if config is None:
        config = FeatureConfig()
    grid = config.grid
    rgb = _to_float(image)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) image, got {rgb.shape}")
    height, width = rgb.shape[:2]
    if height < grid or width < grid:
        raise ValueError(
            f"image {height}x{width} smaller than the {grid}x{grid} grid"
        )
    if config.smooth:
        rgb = _box_blur(rgb)

    gray = rgb @ np.array([0.299, 0.587, 0.114])
    gx, gy = _sobel(gray)
    mag = np.hypot(gx, gy)

    columns = []
    for channel_index in range(3):
        columns.append(_cell_reduce(rgb[..., channel_index], grid, "mean"))
    for channel_index in range(3):
        columns.append(_cell_reduce(rgb[..., channel_index], grid, "std"))
    columns.append(_cell_reduce(np.abs(gx), grid, "mean"))
    columns.append(_cell_reduce(np.abs(gy), grid, "mean"))
    columns.append(_cell_reduce(mag, grid, "std"))
    columns.append(_cell_reduce(mag, grid, "max"))

    # Orientation histogram: bin gradient angle (mod pi), weight by
    # magnitude, normalize per cell.  All bins reduce in one pass.
    angle = np.mod(np.arctan2(gy, gx), np.pi)
    bin_index = np.minimum(
        (angle / np.pi * _N_ORIENT).astype(int), _N_ORIENT - 1
    )
    weighted = np.where(
        bin_index[None, :, :] == np.arange(_N_ORIENT)[:, None, None],
        mag[None, :, :],
        0.0,
    )
    orient = _cell_reduce_stack(weighted, grid)
    totals = orient.sum(axis=-1, keepdims=True)
    orient = np.where(totals > 1e-9, orient / (totals + 1e-9), 0.0)
    for b in range(_N_ORIENT):
        columns.append(orient[..., b])

    masks = _color_masks(rgb)
    color_fractions = _cell_reduce_stack(
        np.stack([masks[name] for name in _COLOR_NAMES]).astype(np.float64),
        grid,
    )
    for channel_index in range(len(_COLOR_NAMES)):
        columns.append(color_fractions[..., channel_index])

    columns.append(_cell_reduce(gray, grid, "max"))
    columns.append(1.0 - _cell_reduce(1.0 - gray, grid, "max"))  # min

    abs_gx = np.abs(gx)
    abs_gy = np.abs(gy)
    columns.append(_cell_centroid(abs_gx, grid, "x"))
    columns.append(_cell_centroid(abs_gy, grid, "y"))
    columns.append(_cell_centroid(mag, grid, "x"))
    columns.append(_cell_centroid(mag, grid, "y"))

    local = np.stack(columns, axis=-1)  # (grid, grid, _LOCAL_DIM)
    if config.context:
        context = _neighborhood_mean(local)
    else:
        context = np.zeros_like(local)

    rows = np.repeat(np.arange(grid), grid).reshape(grid, grid) / (grid - 1)
    cols = np.tile(np.arange(grid), grid).reshape(grid, grid) / (grid - 1)
    position = np.stack([rows, cols], axis=-1)

    stacked = np.concatenate([local, context, position], axis=-1).reshape(
        config.n_cells, FEATURE_DIM
    )
    if stacked.shape != (config.n_cells, FEATURE_DIM):
        raise AssertionError(
            f"feature shape mismatch: {stacked.shape} != "
            f"({config.n_cells}, {FEATURE_DIM})"
        )
    return stacked


def cell_centers(grid: int = DEFAULT_GRID) -> np.ndarray:
    """Normalized (x, y) centers of every grid cell, row-major."""
    step = 1.0 / grid
    ys, xs = np.mgrid[0:grid, 0:grid]
    centers = np.stack(
        [(xs + 0.5) * step, (ys + 0.5) * step], axis=-1
    ).reshape(-1, 2)
    return centers


def cell_bounds(grid: int = DEFAULT_GRID) -> np.ndarray:
    """Normalized xyxy bounds of every grid cell, row-major."""
    step = 1.0 / grid
    ys, xs = np.mgrid[0:grid, 0:grid]
    bounds = np.stack(
        [xs * step, ys * step, (xs + 1) * step, (ys + 1) * step], axis=-1
    ).reshape(-1, 4)
    return bounds
