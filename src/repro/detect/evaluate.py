"""Detection evaluation: greedy IoU matching, AP50, precision/recall/F1.

Implements the metrics of the paper's Table I:

* **mAP50** — average precision at IoU 0.50, computed from the full
  precision/recall curve with 101-point interpolation (COCO style),
* **precision / recall / F1** — computed at the per-class operating
  point that maximizes F1 over the score sweep, mirroring how
  Ultralytics reports the headline P/R of a trained YOLO model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.indicators import ALL_INDICATORS, Indicator
from ..gsv.dataset import LabeledImage
from .boxes import iou_matrix
from .model import Detection, NanoDetector

#: Images per batched forward pass.  Fixed (not derived from the
#: worker count) so the stacked matmul shapes — and therefore the
#: floating-point results — are identical however the work is
#: distributed across processes.
EVAL_BATCH_SIZE = 16


@dataclass(frozen=True)
class ClassMetrics:
    """Detection quality for one indicator class."""

    indicator: Indicator
    precision: float
    recall: float
    f1: float
    ap50: float
    n_ground_truth: int


@dataclass
class EvaluationReport:
    """Per-class metrics plus the paper-style averages."""

    per_class: dict[Indicator, ClassMetrics]

    @property
    def mean_precision(self) -> float:
        return _mean([m.precision for m in self.per_class.values()])

    @property
    def mean_recall(self) -> float:
        return _mean([m.recall for m in self.per_class.values()])

    @property
    def mean_f1(self) -> float:
        return _mean([m.f1 for m in self.per_class.values()])

    @property
    def map50(self) -> float:
        return _mean([m.ap50 for m in self.per_class.values()])

    def rows(self) -> list[dict[str, float | str]]:
        """Table I shaped rows (label, P, R, F1, mAP50) + average."""
        rows: list[dict[str, float | str]] = []
        for indicator in ALL_INDICATORS:
            metrics = self.per_class[indicator]
            rows.append(
                {
                    "label": indicator.display_name,
                    "precision": metrics.precision,
                    "recall": metrics.recall,
                    "f1": metrics.f1,
                    "map50": metrics.ap50,
                }
            )
        rows.append(
            {
                "label": "Average",
                "precision": self.mean_precision,
                "recall": self.mean_recall,
                "f1": self.mean_f1,
                "map50": self.map50,
            }
        )
        return rows


def _mean(values: list[float]) -> float:
    finite = [v for v in values if not np.isnan(v)]
    return float(np.mean(finite)) if finite else float("nan")


def match_detections(
    detections: list[np.ndarray],
    scores: list[np.ndarray],
    ground_truths: list[np.ndarray],
    iou_threshold: float = 0.5,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Greedy matching across a set of images for one class.

    Each element of the three lists corresponds to one image.  Returns
    ``(all_scores, is_true_positive, n_ground_truth)`` with detections
    pooled across images, sorted by descending score.
    """
    pooled_scores = []
    pooled_tp = []
    total_gt = 0
    for det_boxes, det_scores, gt_boxes in zip(
        detections, scores, ground_truths
    ):
        total_gt += len(gt_boxes)
        if len(det_boxes) == 0:
            continue
        order = np.argsort(-det_scores)
        matched = np.zeros(len(gt_boxes), dtype=bool)
        ious = (
            iou_matrix(det_boxes, gt_boxes)
            if len(gt_boxes)
            else np.zeros((len(det_boxes), 0))
        )
        for det_index in order:
            best_gt = -1
            best_iou = iou_threshold
            for gt_index in range(len(gt_boxes)):
                if matched[gt_index]:
                    continue
                if ious[det_index, gt_index] >= best_iou:
                    best_iou = ious[det_index, gt_index]
                    best_gt = gt_index
            pooled_scores.append(det_scores[det_index])
            if best_gt >= 0:
                matched[best_gt] = True
                pooled_tp.append(True)
            else:
                pooled_tp.append(False)
    if not pooled_scores:
        return np.zeros(0), np.zeros(0, dtype=bool), total_gt
    pooled = np.argsort(-np.asarray(pooled_scores))
    return (
        np.asarray(pooled_scores)[pooled],
        np.asarray(pooled_tp, dtype=bool)[pooled],
        total_gt,
    )


def average_precision(
    tp_sorted: np.ndarray, n_ground_truth: int
) -> float:
    """AP with 101-point interpolation over the PR curve."""
    if n_ground_truth == 0:
        return float("nan")
    if tp_sorted.size == 0:
        return 0.0
    tp_cum = np.cumsum(tp_sorted)
    fp_cum = np.cumsum(~tp_sorted)
    recall = tp_cum / n_ground_truth
    precision = tp_cum / (tp_cum + fp_cum)
    # Monotone non-increasing precision envelope.
    envelope = np.maximum.accumulate(precision[::-1])[::-1]
    recall_points = np.linspace(0.0, 1.0, 101)
    interpolated = np.zeros_like(recall_points)
    for i, r in enumerate(recall_points):
        above = recall >= r
        interpolated[i] = envelope[above].max() if above.any() else 0.0
    return float(interpolated.mean())


def best_f1_operating_point(
    scores_sorted: np.ndarray, tp_sorted: np.ndarray, n_ground_truth: int
) -> tuple[float, float, float]:
    """(precision, recall, f1) at the score threshold maximizing F1."""
    if n_ground_truth == 0:
        return float("nan"), float("nan"), float("nan")
    if scores_sorted.size == 0:
        return 0.0, 0.0, 0.0
    tp_cum = np.cumsum(tp_sorted)
    fp_cum = np.cumsum(~tp_sorted)
    precision = tp_cum / (tp_cum + fp_cum)
    recall = tp_cum / n_ground_truth
    with np.errstate(divide="ignore", invalid="ignore"):
        f1 = np.where(
            precision + recall > 0,
            2.0 * precision * recall / (precision + recall),
            0.0,
        )
    best = int(np.argmax(f1))
    return float(precision[best]), float(recall[best]), float(f1[best])


def _detect_chunk(payload) -> list[list[Detection]]:
    """Process-pool worker: batched detection over a chunk of images.

    Module-level so the process backend can pickle it; the model rides
    along in the payload (~100 KB of weights) once per chunk.
    """
    model, images, conf_threshold = payload
    pixels = [image.render() for image in images]
    return model.detect_batch(pixels, conf_threshold=conf_threshold)


def prediction_key(model: NanoDetector, image: LabeledImage, conf_threshold: float) -> str:
    """Artifact-cache key for one image's detections under one model."""
    from ..artifacts import fingerprint, image_fingerprint, model_fingerprint

    return fingerprint(
        {
            "artifact": "detections",
            "model": model_fingerprint(model),
            "image": image_fingerprint(image),
            "conf_threshold": conf_threshold,
        }
    )


def _encode_detections(detections: list[Detection]) -> list:
    return [
        [det.indicator.value, [float(v) for v in det.box], det.score]
        for det in detections
    ]


def _decode_detections(payload: list) -> list[Detection]:
    return [
        Detection(
            indicator=Indicator(indicator_value),
            box=np.asarray(box, dtype=np.float64),
            score=float(score),
        )
        for indicator_value, box, score in payload
    ]


def predict_images(
    model: NanoDetector,
    images: list[LabeledImage],
    conf_threshold: float,
    image_transform=None,
    workers: int | str = 1,
    cache=None,
    batch_size: int = EVAL_BATCH_SIZE,
) -> list[list[Detection]]:
    """Per-image detections, batched, optionally parallel and cached.

    With ``image_transform`` set, everything runs serially in image
    order: Fig. 3's transform closes over a shared, stateful RNG, so
    distributing it would silently change which noise lands on which
    image.  Caching is likewise disabled under a transform — the
    corruption is not part of the image's content fingerprint.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive: {batch_size}")
    detections: list[list[Detection] | None] = [None] * len(images)

    if image_transform is not None:
        for start in range(0, len(images), batch_size):
            chunk = images[start : start + batch_size]
            pixels = [image_transform(image.render()) for image in chunk]
            for offset, dets in enumerate(
                model.detect_batch(pixels, conf_threshold=conf_threshold)
            ):
                detections[start + offset] = dets
        return detections

    keys: list[str | None] = [None] * len(images)
    missing: list[int] = []
    if cache is not None:
        for index, image in enumerate(images):
            keys[index] = prediction_key(model, image, conf_threshold)
            stored = cache.get_json("predictions", keys[index])
            if stored is not None:
                detections[index] = _decode_detections(stored)
            else:
                missing.append(index)
    else:
        missing = list(range(len(images)))

    if missing:
        from ..parallel import ParallelExecutor

        chunks = [
            missing[start : start + batch_size]
            for start in range(0, len(missing), batch_size)
        ]
        payloads = [
            (model, [images[index] for index in chunk], conf_threshold)
            for chunk in chunks
        ]
        executor = ParallelExecutor(workers=workers, cpu_bound=True)
        for chunk, results in zip(
            chunks, executor.map_results(_detect_chunk, payloads)
        ):
            for index, dets in zip(chunk, results):
                detections[index] = dets
                if cache is not None:
                    cache.put_json(
                        "predictions", keys[index], _encode_detections(dets)
                    )
    return detections


def evaluate_detector(
    model: NanoDetector,
    images: list[LabeledImage],
    iou_threshold: float = 0.5,
    conf_threshold: float = 0.05,
    image_transform=None,
    workers: int | str = 1,
    cache=None,
) -> EvaluationReport:
    """Evaluate a trained detector on labeled images.

    ``conf_threshold`` is deliberately low: the PR sweep needs the full
    score range, and the operating point is chosen by best F1 per
    class.  ``image_transform`` optionally corrupts each rendered image
    before inference (the Fig. 3 noise ablation hooks in here).

    ``workers > 1`` fans rendering + batched inference out to a
    process pool (metrics are byte-identical to serial: batch shapes
    are fixed and results are reassembled in image order).  ``cache``
    persists per-image detections keyed by model + image content, so
    repeated evaluations of an unchanged model skip rendering and
    inference entirely.
    """
    per_class_dets: dict[Indicator, list[np.ndarray]] = {
        ind: [] for ind in ALL_INDICATORS
    }
    per_class_scores: dict[Indicator, list[np.ndarray]] = {
        ind: [] for ind in ALL_INDICATORS
    }
    per_class_gts: dict[Indicator, list[np.ndarray]] = {
        ind: [] for ind in ALL_INDICATORS
    }

    all_detections = predict_images(
        model,
        images,
        conf_threshold,
        image_transform=image_transform,
        workers=workers,
        cache=cache,
    )
    for image, detections in zip(images, all_detections):
        grouped: dict[Indicator, list[Detection]] = {
            ind: [] for ind in ALL_INDICATORS
        }
        for det in detections:
            grouped[det.indicator].append(det)
        for indicator in ALL_INDICATORS:
            dets = grouped[indicator]
            per_class_dets[indicator].append(
                np.asarray([d.box for d in dets]).reshape(-1, 4)
            )
            per_class_scores[indicator].append(
                np.asarray([d.score for d in dets])
            )
            gt = [
                [box.x_min, box.y_min, box.x_max, box.y_max]
                for ind, box in image.annotations
                if ind == indicator
            ]
            per_class_gts[indicator].append(
                np.asarray(gt, dtype=np.float64).reshape(-1, 4)
            )

    per_class = {}
    for indicator in ALL_INDICATORS:
        scores_sorted, tp_sorted, n_gt = match_detections(
            per_class_dets[indicator],
            per_class_scores[indicator],
            per_class_gts[indicator],
            iou_threshold,
        )
        ap = average_precision(tp_sorted, n_gt)
        precision, recall, f1 = best_f1_operating_point(
            scores_sorted, tp_sorted, n_gt
        )
        per_class[indicator] = ClassMetrics(
            indicator=indicator,
            precision=precision,
            recall=recall,
            f1=f1,
            ap50=ap,
            n_ground_truth=n_gt,
        )
    return EvaluationReport(per_class=per_class)
