"""Detection evaluation: greedy IoU matching, AP50, precision/recall/F1.

Implements the metrics of the paper's Table I:

* **mAP50** — average precision at IoU 0.50, computed from the full
  precision/recall curve with 101-point interpolation (COCO style),
* **precision / recall / F1** — computed at the per-class operating
  point that maximizes F1 over the score sweep, mirroring how
  Ultralytics reports the headline P/R of a trained YOLO model.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from ..core.indicators import ALL_INDICATORS, Indicator
from ..gsv.dataset import LabeledImage
from .boxes import iou_matrix
from .model import Detection, NanoDetector

#: Images per batched forward pass.  Fixed (not derived from the
#: worker count) so the stacked matmul shapes — and therefore the
#: floating-point results — are identical however the work is
#: distributed across processes.
EVAL_BATCH_SIZE = 16

#: Images held in memory at once when evaluating an image *stream*.
#: Large enough that process-pool chunks amortize, small enough that
#: peak memory stays far below materializing a county's imagery.
DEFAULT_EVAL_SHARD_SIZE = 4 * EVAL_BATCH_SIZE


@dataclass(frozen=True)
class ClassMetrics:
    """Detection quality for one indicator class."""

    indicator: Indicator
    precision: float
    recall: float
    f1: float
    ap50: float
    n_ground_truth: int


@dataclass
class EvaluationReport:
    """Per-class metrics plus the paper-style averages."""

    per_class: dict[Indicator, ClassMetrics]

    @property
    def mean_precision(self) -> float:
        return _mean([m.precision for m in self.per_class.values()])

    @property
    def mean_recall(self) -> float:
        return _mean([m.recall for m in self.per_class.values()])

    @property
    def mean_f1(self) -> float:
        return _mean([m.f1 for m in self.per_class.values()])

    @property
    def map50(self) -> float:
        return _mean([m.ap50 for m in self.per_class.values()])

    def rows(self) -> list[dict[str, float | str]]:
        """Table I shaped rows (label, P, R, F1, mAP50) + average."""
        rows: list[dict[str, float | str]] = []
        for indicator in ALL_INDICATORS:
            metrics = self.per_class[indicator]
            rows.append(
                {
                    "label": indicator.display_name,
                    "precision": metrics.precision,
                    "recall": metrics.recall,
                    "f1": metrics.f1,
                    "map50": metrics.ap50,
                }
            )
        rows.append(
            {
                "label": "Average",
                "precision": self.mean_precision,
                "recall": self.mean_recall,
                "f1": self.mean_f1,
                "map50": self.map50,
            }
        )
        return rows


def _mean(values: list[float]) -> float:
    finite = [v for v in values if not np.isnan(v)]
    return float(np.mean(finite)) if finite else float("nan")


def _match_one_image(
    det_boxes: np.ndarray,
    det_scores: np.ndarray,
    gt_boxes: np.ndarray,
    iou_threshold: float,
) -> tuple[list, list[bool]]:
    """Greedy matching for one image: (scores, is_tp) in score order.

    The single matching implementation shared by the batch pooling in
    :func:`match_detections` and the streaming
    :class:`DetectionAccumulator` — both paths append its output in
    image order, so they build the *same* pooled arrays and any final
    sort over them is identical.
    """
    image_scores: list = []
    image_tp: list[bool] = []
    if len(det_boxes) == 0:
        return image_scores, image_tp
    order = np.argsort(-det_scores)
    matched = np.zeros(len(gt_boxes), dtype=bool)
    ious = (
        iou_matrix(det_boxes, gt_boxes)
        if len(gt_boxes)
        else np.zeros((len(det_boxes), 0))
    )
    for det_index in order:
        best_gt = -1
        best_iou = iou_threshold
        for gt_index in range(len(gt_boxes)):
            if matched[gt_index]:
                continue
            if ious[det_index, gt_index] >= best_iou:
                best_iou = ious[det_index, gt_index]
                best_gt = gt_index
        image_scores.append(det_scores[det_index])
        if best_gt >= 0:
            matched[best_gt] = True
            image_tp.append(True)
        else:
            image_tp.append(False)
    return image_scores, image_tp


def _sort_pooled(
    pooled_scores: list, pooled_tp: list[bool], total_gt: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Final descending-score sort over image-order pooled matches."""
    if not pooled_scores:
        return np.zeros(0), np.zeros(0, dtype=bool), total_gt
    pooled = np.argsort(-np.asarray(pooled_scores))
    return (
        np.asarray(pooled_scores)[pooled],
        np.asarray(pooled_tp, dtype=bool)[pooled],
        total_gt,
    )


def match_detections(
    detections: list[np.ndarray],
    scores: list[np.ndarray],
    ground_truths: list[np.ndarray],
    iou_threshold: float = 0.5,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Greedy matching across a set of images for one class.

    Each element of the three lists corresponds to one image.  Returns
    ``(all_scores, is_true_positive, n_ground_truth)`` with detections
    pooled across images, sorted by descending score.
    """
    pooled_scores: list = []
    pooled_tp: list[bool] = []
    total_gt = 0
    for det_boxes, det_scores, gt_boxes in zip(
        detections, scores, ground_truths
    ):
        total_gt += len(gt_boxes)
        image_scores, image_tp = _match_one_image(
            det_boxes, det_scores, gt_boxes, iou_threshold
        )
        pooled_scores.extend(image_scores)
        pooled_tp.extend(image_tp)
    return _sort_pooled(pooled_scores, pooled_tp, total_gt)


def average_precision(
    tp_sorted: np.ndarray, n_ground_truth: int
) -> float:
    """AP with 101-point interpolation over the PR curve."""
    if n_ground_truth == 0:
        return float("nan")
    if tp_sorted.size == 0:
        return 0.0
    tp_cum = np.cumsum(tp_sorted)
    fp_cum = np.cumsum(~tp_sorted)
    recall = tp_cum / n_ground_truth
    precision = tp_cum / (tp_cum + fp_cum)
    # Monotone non-increasing precision envelope.
    envelope = np.maximum.accumulate(precision[::-1])[::-1]
    recall_points = np.linspace(0.0, 1.0, 101)
    interpolated = np.zeros_like(recall_points)
    for i, r in enumerate(recall_points):
        above = recall >= r
        interpolated[i] = envelope[above].max() if above.any() else 0.0
    return float(interpolated.mean())


def best_f1_operating_point(
    scores_sorted: np.ndarray, tp_sorted: np.ndarray, n_ground_truth: int
) -> tuple[float, float, float]:
    """(precision, recall, f1) at the score threshold maximizing F1."""
    if n_ground_truth == 0:
        return float("nan"), float("nan"), float("nan")
    if scores_sorted.size == 0:
        return 0.0, 0.0, 0.0
    tp_cum = np.cumsum(tp_sorted)
    fp_cum = np.cumsum(~tp_sorted)
    precision = tp_cum / (tp_cum + fp_cum)
    recall = tp_cum / n_ground_truth
    with np.errstate(divide="ignore", invalid="ignore"):
        f1 = np.where(
            precision + recall > 0,
            2.0 * precision * recall / (precision + recall),
            0.0,
        )
    best = int(np.argmax(f1))
    return float(precision[best]), float(recall[best]), float(f1[best])


class DetectionAccumulator:
    """Streaming, mergeable builder of an :class:`EvaluationReport`.

    Folds ``(image, detections)`` pairs one at a time: each image is
    matched immediately via :func:`_match_one_image` and only its
    pooled ``(score, is_tp)`` entries are retained — O(detections),
    never O(images × pixels).  Because entries are appended in image
    order and the descending-score sort happens once in
    :meth:`report`, the result is *identical* to handing the full
    image list to :func:`match_detections`: both paths sort the same
    pooled array with the same (unstable) ``argsort``, so even ties
    break the same way.
    """

    def __init__(self, iou_threshold: float = 0.5) -> None:
        self.iou_threshold = iou_threshold
        self._scores: dict[Indicator, list] = {
            ind: [] for ind in ALL_INDICATORS
        }
        self._tp: dict[Indicator, list[bool]] = {
            ind: [] for ind in ALL_INDICATORS
        }
        self._gt: dict[Indicator, int] = {ind: 0 for ind in ALL_INDICATORS}
        self.images_seen = 0

    def update(
        self, image: LabeledImage, detections: list[Detection]
    ) -> None:
        grouped: dict[Indicator, list[Detection]] = {
            ind: [] for ind in ALL_INDICATORS
        }
        for det in detections:
            grouped[det.indicator].append(det)
        for indicator in ALL_INDICATORS:
            dets = grouped[indicator]
            det_boxes = np.asarray([d.box for d in dets]).reshape(-1, 4)
            det_scores = np.asarray([d.score for d in dets])
            gt = [
                [box.x_min, box.y_min, box.x_max, box.y_max]
                for ind, box in image.annotations
                if ind == indicator
            ]
            gt_boxes = np.asarray(gt, dtype=np.float64).reshape(-1, 4)
            self._gt[indicator] += len(gt_boxes)
            image_scores, image_tp = _match_one_image(
                det_boxes, det_scores, gt_boxes, self.iou_threshold
            )
            self._scores[indicator].extend(image_scores)
            self._tp[indicator].extend(image_tp)
        self.images_seen += 1

    def merge(self, other: "DetectionAccumulator") -> "DetectionAccumulator":
        """Append ``other``'s pooled matches after this accumulator's.

        Merging shard accumulators in shard order reproduces the pool
        a single sequential pass would have built.
        """
        if other.iou_threshold != self.iou_threshold:
            raise ValueError(
                f"iou_threshold mismatch: {self.iou_threshold} "
                f"vs {other.iou_threshold}"
            )
        for indicator in ALL_INDICATORS:
            self._scores[indicator].extend(other._scores[indicator])
            self._tp[indicator].extend(other._tp[indicator])
            self._gt[indicator] += other._gt[indicator]
        self.images_seen += other.images_seen
        return self

    def report(self) -> EvaluationReport:
        per_class = {}
        for indicator in ALL_INDICATORS:
            scores_sorted, tp_sorted, n_gt = _sort_pooled(
                self._scores[indicator],
                self._tp[indicator],
                self._gt[indicator],
            )
            ap = average_precision(tp_sorted, n_gt)
            precision, recall, f1 = best_f1_operating_point(
                scores_sorted, tp_sorted, n_gt
            )
            per_class[indicator] = ClassMetrics(
                indicator=indicator,
                precision=precision,
                recall=recall,
                f1=f1,
                ap50=ap,
                n_ground_truth=n_gt,
            )
        return EvaluationReport(per_class=per_class)


def _detect_chunk(payload) -> list[list[Detection]]:
    """Process-pool worker: batched detection over a chunk of images.

    Module-level so the process backend can pickle it; the model rides
    along in the payload (~100 KB of weights) once per chunk.
    """
    model, images, conf_threshold, precision = payload
    pixels = [image.render() for image in images]
    return model.detect_batch(
        pixels, conf_threshold=conf_threshold, precision=precision
    )


def prediction_key(
    model: NanoDetector,
    image: LabeledImage,
    conf_threshold: float,
    precision: str = "float64",
) -> str:
    """Artifact-cache key for one image's detections under one model.

    The ``precision`` tier joins the key only when it is not the
    float64 default, so every pre-existing cache entry keeps its
    address.
    """
    from ..artifacts import fingerprint, image_fingerprint, model_fingerprint

    payload = {
        "artifact": "detections",
        "model": model_fingerprint(model),
        "image": image_fingerprint(image),
        "conf_threshold": conf_threshold,
    }
    if precision != "float64":
        payload["precision"] = precision
    return fingerprint(payload)


def _encode_detections(detections: list[Detection]) -> list:
    return [
        [det.indicator.value, [float(v) for v in det.box], det.score]
        for det in detections
    ]


def _decode_detections(payload: list) -> list[Detection]:
    return [
        Detection(
            indicator=Indicator(indicator_value),
            box=np.asarray(box, dtype=np.float64),
            score=float(score),
        )
        for indicator_value, box, score in payload
    ]


def _shards(
    images: Iterator[LabeledImage], shard_size: int
) -> Iterator[list[LabeledImage]]:
    """Cut an image stream into bounded lists."""
    shard: list[LabeledImage] = []
    for image in images:
        shard.append(image)
        if len(shard) >= shard_size:
            yield shard
            shard = []
    if shard:
        yield shard


def _predict_shard(
    model: NanoDetector,
    images: list[LabeledImage],
    conf_threshold: float,
    image_transform,
    workers: int | str,
    cache,
    batch_size: int,
    precision: str,
) -> list[list[Detection]]:
    """The materialized-list prediction core (one shard at a time).

    With ``image_transform`` set, everything runs serially in image
    order: Fig. 3's transform closes over a shared, stateful RNG, so
    distributing it would silently change which noise lands on which
    image.  Caching is likewise disabled under a transform — the
    corruption is not part of the image's content fingerprint.
    """
    detections: list[list[Detection] | None] = [None] * len(images)

    if image_transform is not None:
        for start in range(0, len(images), batch_size):
            chunk = images[start : start + batch_size]
            pixels = [image_transform(image.render()) for image in chunk]
            for offset, dets in enumerate(
                model.detect_batch(
                    pixels,
                    conf_threshold=conf_threshold,
                    precision=precision,
                )
            ):
                detections[start + offset] = dets
        return detections

    keys: list[str | None] = [None] * len(images)
    missing: list[int] = []
    if cache is not None:
        for index, image in enumerate(images):
            keys[index] = prediction_key(
                model, image, conf_threshold, precision
            )
            stored = cache.get_json("predictions", keys[index])
            if stored is not None:
                detections[index] = _decode_detections(stored)
            else:
                missing.append(index)
    else:
        missing = list(range(len(images)))

    if missing:
        from ..parallel import ParallelExecutor

        chunks = [
            missing[start : start + batch_size]
            for start in range(0, len(missing), batch_size)
        ]
        payloads = [
            (
                model,
                [images[index] for index in chunk],
                conf_threshold,
                precision,
            )
            for chunk in chunks
        ]
        executor = ParallelExecutor(workers=workers, cpu_bound=True)
        for chunk, results in zip(
            chunks, executor.map_results(_detect_chunk, payloads)
        ):
            for index, dets in zip(chunk, results):
                detections[index] = dets
                if cache is not None:
                    cache.put_json(
                        "predictions", keys[index], _encode_detections(dets)
                    )
    return detections


def iter_predictions(
    model: NanoDetector,
    images: Iterable[LabeledImage],
    conf_threshold: float,
    image_transform=None,
    workers: int | str = 1,
    cache=None,
    batch_size: int = EVAL_BATCH_SIZE,
    shard_size: int | None = None,
    precision: str = "float64",
) -> Iterator[tuple[LabeledImage, list[Detection]]]:
    """Yield ``(image, detections)`` pairs, consuming ``images`` lazily.

    ``precision`` selects the inference tier (see
    :data:`repro.detect.model.PRECISIONS`); cached detections are
    keyed per tier so float32/int8 runs never alias float64 entries.

    A list input with no ``shard_size`` is processed as one shard —
    exactly the legacy :func:`predict_images` behavior, same batch
    boundaries and all.  Any other iterable (or an explicit
    ``shard_size``) is consumed in bounded shards: at most one shard
    of rendered images is alive at a time, so a stream of a million
    captures evaluates in O(shard_size) memory.

    The shard width is rounded **up to a multiple of** ``batch_size``:
    a stacked forward's floating-point results depend on its batch
    shape, so image *k* must land in batch ``k // batch_size``
    whether the stream is sharded or materialized — that alignment is
    what makes streaming metrics byte-identical to batch metrics.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive: {batch_size}")
    if shard_size is None and isinstance(images, (list, tuple)):
        shards: Iterable[list[LabeledImage]] = [list(images)]
    else:
        requested = (
            shard_size if shard_size is not None else DEFAULT_EVAL_SHARD_SIZE
        )
        if requested < 1:
            raise ValueError(f"shard_size must be positive: {requested}")
        width = batch_size * -(-requested // batch_size)
        shards = _shards(iter(images), width)
    for shard in shards:
        results = _predict_shard(
            model,
            shard,
            conf_threshold,
            image_transform,
            workers,
            cache,
            batch_size,
            precision,
        )
        yield from zip(shard, results)


def predict_images(
    model: NanoDetector,
    images: Iterable[LabeledImage],
    conf_threshold: float,
    image_transform=None,
    workers: int | str = 1,
    cache=None,
    batch_size: int = EVAL_BATCH_SIZE,
    shard_size: int | None = None,
    precision: str = "float64",
) -> list[list[Detection]]:
    """Per-image detections, batched, optionally parallel and cached.

    Accepts any iterable of images (see :func:`iter_predictions` for
    the sharding rules); the returned list is necessarily O(images),
    so callers that only need aggregate metrics over a long stream
    should use :func:`evaluate_detector` or :func:`iter_predictions`
    directly.
    """
    return [
        detections
        for _, detections in iter_predictions(
            model,
            images,
            conf_threshold,
            image_transform=image_transform,
            workers=workers,
            cache=cache,
            batch_size=batch_size,
            shard_size=shard_size,
            precision=precision,
        )
    ]


def evaluate_detector(
    model: NanoDetector,
    images: Iterable[LabeledImage],
    iou_threshold: float = 0.5,
    conf_threshold: float = 0.05,
    image_transform=None,
    workers: int | str = 1,
    cache=None,
    shard_size: int | None = None,
    precision: str = "float64",
) -> EvaluationReport:
    """Evaluate a trained detector on labeled images.

    ``conf_threshold`` is deliberately low: the PR sweep needs the full
    score range, and the operating point is chosen by best F1 per
    class.  ``image_transform`` optionally corrupts each rendered image
    before inference (the Fig. 3 noise ablation hooks in here).

    ``workers > 1`` fans rendering + batched inference out to a
    process pool (metrics are byte-identical to serial: batch shapes
    are fixed and results are reassembled in image order).  ``cache``
    persists per-image detections keyed by model + image content, so
    repeated evaluations of an unchanged model skip rendering and
    inference entirely.

    ``images`` may be any iterable: results fold through a
    :class:`DetectionAccumulator` image by image, so evaluating a
    generator of a county's captures holds at most one shard (see
    :func:`iter_predictions`) in memory and still produces a report
    identical to the materialized-list call.
    """
    accumulator = DetectionAccumulator(iou_threshold)
    for image, detections in iter_predictions(
        model,
        images,
        conf_threshold,
        image_transform=image_transform,
        workers=workers,
        cache=cache,
        shard_size=shard_size,
        precision=precision,
    ):
        accumulator.update(image, detections)
    return accumulator.report()
