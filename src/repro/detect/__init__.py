"""Detector substrate: the YOLOv11-Nano analog trained from scratch."""

from .analysis import (
    ClassErrorBreakdown,
    ErrorReport,
    analyze_errors,
)
from .boxes import (
    as_boxes,
    box_area,
    clip_boxes,
    cxcywh_to_xyxy,
    iou_matrix,
    nms,
    xyxy_to_cxcywh,
)
from .evaluate import (
    ClassMetrics,
    DetectionAccumulator,
    EvaluationReport,
    average_precision,
    best_f1_operating_point,
    evaluate_detector,
    iter_predictions,
    match_detections,
    predict_images,
)
from .features import (
    DEFAULT_GRID,
    FEATURE_DIM,
    FeatureConfig,
    cell_bounds,
    cell_centers,
    extract_features,
)
from .model import Detection, ModelConfig, NanoDetector, sigmoid
from .train import (
    CELL_COVER_THRESHOLD,
    TrainConfig,
    TrainResult,
    assign_targets,
    build_training_tensors,
    train_detector,
)

__all__ = [
    "ClassErrorBreakdown",
    "ErrorReport",
    "analyze_errors",
    "as_boxes",
    "box_area",
    "clip_boxes",
    "cxcywh_to_xyxy",
    "iou_matrix",
    "nms",
    "xyxy_to_cxcywh",
    "ClassMetrics",
    "DetectionAccumulator",
    "EvaluationReport",
    "average_precision",
    "best_f1_operating_point",
    "evaluate_detector",
    "iter_predictions",
    "match_detections",
    "predict_images",
    "DEFAULT_GRID",
    "FEATURE_DIM",
    "FeatureConfig",
    "cell_bounds",
    "cell_centers",
    "extract_features",
    "Detection",
    "ModelConfig",
    "NanoDetector",
    "sigmoid",
    "CELL_COVER_THRESHOLD",
    "TrainConfig",
    "TrainResult",
    "assign_targets",
    "build_training_tensors",
    "train_detector",
]
