"""Vectorized box algebra: IoU, NMS, and coordinate conversions.

Boxes are numpy arrays of shape ``(N, 4)`` in normalized ``xyxy``
(``x_min, y_min, x_max, y_max``) unless a function says otherwise.
All operations are pure and allocation-light — they sit on the hot
path of both training target assignment and evaluation matching.
"""

from __future__ import annotations

import numpy as np


def as_boxes(array_like) -> np.ndarray:
    """Coerce to an ``(N, 4)`` float64 box array, validating extents."""
    boxes = np.atleast_2d(np.asarray(array_like, dtype=np.float64))
    if boxes.size == 0:
        return boxes.reshape(0, 4)
    if boxes.shape[1] != 4:
        raise ValueError(f"boxes must have 4 columns, got {boxes.shape}")
    if np.any(boxes[:, 2] <= boxes[:, 0]) or np.any(boxes[:, 3] <= boxes[:, 1]):
        raise ValueError("degenerate box: max edge must exceed min edge")
    return boxes


def box_area(boxes: np.ndarray) -> np.ndarray:
    """Areas of an ``(N, 4)`` xyxy box array."""
    boxes = np.asarray(boxes, dtype=np.float64)
    if boxes.size == 0:
        return np.zeros(0)
    return (boxes[:, 2] - boxes[:, 0]) * (boxes[:, 3] - boxes[:, 1])


def iou_matrix(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Pairwise IoU: result ``[i, j]`` is IoU of ``a[i]`` with ``b[j]``."""
    a = np.asarray(boxes_a, dtype=np.float64).reshape(-1, 4)
    b = np.asarray(boxes_b, dtype=np.float64).reshape(-1, 4)
    if a.shape[0] == 0 or b.shape[0] == 0:
        return np.zeros((a.shape[0], b.shape[0]))
    x0 = np.maximum(a[:, None, 0], b[None, :, 0])
    y0 = np.maximum(a[:, None, 1], b[None, :, 1])
    x1 = np.minimum(a[:, None, 2], b[None, :, 2])
    y1 = np.minimum(a[:, None, 3], b[None, :, 3])
    inter = np.clip(x1 - x0, 0.0, None) * np.clip(y1 - y0, 0.0, None)
    union = box_area(a)[:, None] + box_area(b)[None, :] - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        iou = np.where(union > 0, inter / union, 0.0)
    return iou


def xyxy_to_cxcywh(boxes: np.ndarray) -> np.ndarray:
    """Convert xyxy boxes to center/size parameterization."""
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    out = np.empty_like(boxes)
    out[:, 0] = (boxes[:, 0] + boxes[:, 2]) / 2.0
    out[:, 1] = (boxes[:, 1] + boxes[:, 3]) / 2.0
    out[:, 2] = boxes[:, 2] - boxes[:, 0]
    out[:, 3] = boxes[:, 3] - boxes[:, 1]
    return out


def cxcywh_to_xyxy(boxes: np.ndarray) -> np.ndarray:
    """Convert center/size boxes back to xyxy."""
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    out = np.empty_like(boxes)
    out[:, 0] = boxes[:, 0] - boxes[:, 2] / 2.0
    out[:, 1] = boxes[:, 1] - boxes[:, 3] / 2.0
    out[:, 2] = boxes[:, 0] + boxes[:, 2] / 2.0
    out[:, 3] = boxes[:, 1] + boxes[:, 3] / 2.0
    return out


def clip_boxes(boxes: np.ndarray, eps: float = 1e-4) -> np.ndarray:
    """Clip xyxy boxes to the unit canvas, keeping them non-degenerate."""
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4).copy()
    boxes[:, 0] = np.clip(boxes[:, 0], 0.0, 1.0 - eps)
    boxes[:, 1] = np.clip(boxes[:, 1], 0.0, 1.0 - eps)
    boxes[:, 2] = np.clip(boxes[:, 2], boxes[:, 0] + eps, 1.0)
    boxes[:, 3] = np.clip(boxes[:, 3], boxes[:, 1] + eps, 1.0)
    return boxes


def nms(
    boxes: np.ndarray,
    scores: np.ndarray,
    iou_threshold: float = 0.5,
    merge: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Greedy non-maximum suppression.

    Returns ``(kept_boxes, kept_scores)`` sorted by descending score.
    With ``merge=True`` each kept box is replaced by the score-weighted
    average of its suppressed cluster — the grid head emits one box per
    positive cell, and merging the cluster localizes far better than
    keeping the single highest-scoring cell's guess.
    """
    if not 0.0 < iou_threshold <= 1.0:
        raise ValueError(f"iou threshold out of range: {iou_threshold}")
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if boxes.shape[0] != scores.shape[0]:
        raise ValueError("boxes and scores must have the same length")
    if boxes.shape[0] == 0:
        return boxes, scores

    # Work in score-sorted domain so "the next unsuppressed candidate"
    # is always the first surviving row: the Python loop then runs
    # once per *kept* box (typically a handful) instead of once per
    # candidate (hundreds of grid cells), with the suppression mask
    # updated as one vectorized comparison against the precomputed
    # IoU matrix.
    order = np.argsort(-scores)
    ious_sorted = iou_matrix(boxes, boxes)[np.ix_(order, order)]
    alive = np.ones(len(order), dtype=bool)
    kept_boxes = []
    kept_scores = []
    while True:
        remaining = np.nonzero(alive)[0]
        if remaining.size == 0:
            break
        best = remaining[0]
        cluster = alive & (ious_sorted[best] >= iou_threshold)
        alive &= ~cluster
        if merge:
            # Ascending original index keeps the weighted-average
            # summation order identical to the pre-vectorized loop.
            members = np.sort(order[cluster])
            merged = np.average(
                boxes[members], axis=0, weights=scores[members]
            )
            kept_boxes.append(merged)
        else:
            kept_boxes.append(boxes[order[best]])
        kept_scores.append(scores[order[best]])
    return np.asarray(kept_boxes), np.asarray(kept_scores)
