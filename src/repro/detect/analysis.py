"""Detection error taxonomy: where does a detector lose F1?

``evaluate_detector`` reports the headline numbers; this module
explains them.  Every ground-truth object is classified as detected /
mislocalized / missed, and every detection as true positive /
duplicate / background false positive — the standard error taxonomy
(TIDE-style) that tells you whether to fix the classifier, the box
regressor, or the NMS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.indicators import ALL_INDICATORS, Indicator
from ..gsv.dataset import LabeledImage
from .boxes import iou_matrix
from .model import NanoDetector


@dataclass
class ClassErrorBreakdown:
    """Error taxonomy for one indicator class."""

    indicator: Indicator
    detected: int = 0  # GT matched at IoU ≥ hit threshold
    mislocalized: int = 0  # best IoU in [loc_threshold, hit)
    missed: int = 0  # best IoU < loc_threshold
    duplicates: int = 0  # extra detections on already-matched GT
    background_fp: int = 0  # detections overlapping nothing

    @property
    def n_ground_truth(self) -> int:
        return self.detected + self.mislocalized + self.missed

    @property
    def detection_rate(self) -> float:
        total = self.n_ground_truth
        return self.detected / total if total else float("nan")

    @property
    def dominant_error(self) -> str:
        """Which error type costs this class the most."""
        errors = {
            "mislocalized": self.mislocalized,
            "missed": self.missed,
            "background_fp": self.background_fp,
            "duplicates": self.duplicates,
        }
        if all(v == 0 for v in errors.values()):
            return "none"
        return max(sorted(errors), key=lambda k: errors[k])


@dataclass
class ErrorReport:
    """Per-class error breakdowns plus rendering."""

    per_class: dict[Indicator, ClassErrorBreakdown] = field(
        default_factory=dict
    )

    def rows(self) -> list[dict[str, object]]:
        rows = []
        for indicator in ALL_INDICATORS:
            breakdown = self.per_class[indicator]
            rows.append(
                {
                    "label": indicator.display_name,
                    "detected": breakdown.detected,
                    "mislocalized": breakdown.mislocalized,
                    "missed": breakdown.missed,
                    "duplicates": breakdown.duplicates,
                    "background_fp": breakdown.background_fp,
                    "dominant_error": breakdown.dominant_error,
                }
            )
        return rows

    def render(self) -> str:
        lines = [
            f"{'label':18s} {'det':>4s} {'loc':>4s} {'miss':>5s} "
            f"{'dup':>4s} {'bgfp':>5s}  dominant"
        ]
        for row in self.rows():
            lines.append(
                f"{row['label']:18s} {row['detected']:4d} "
                f"{row['mislocalized']:4d} {row['missed']:5d} "
                f"{row['duplicates']:4d} {row['background_fp']:5d}  "
                f"{row['dominant_error']}"
            )
        return "\n".join(lines)


def analyze_errors(
    model: NanoDetector,
    images: list[LabeledImage],
    conf_threshold: float = 0.4,
    hit_iou: float = 0.5,
    loc_iou: float = 0.1,
) -> ErrorReport:
    """Classify every GT object and detection into the error taxonomy."""
    if not 0.0 < loc_iou < hit_iou <= 1.0:
        raise ValueError("need 0 < loc_iou < hit_iou <= 1")
    report = ErrorReport(
        per_class={
            indicator: ClassErrorBreakdown(indicator=indicator)
            for indicator in ALL_INDICATORS
        }
    )
    for image in images:
        detections = model.detect(
            image.render(), conf_threshold=conf_threshold
        )
        for indicator in ALL_INDICATORS:
            breakdown = report.per_class[indicator]
            gt_boxes = np.asarray(
                [
                    [box.x_min, box.y_min, box.x_max, box.y_max]
                    for ind, box in image.annotations
                    if ind == indicator
                ]
            ).reshape(-1, 4)
            det = [d for d in detections if d.indicator == indicator]
            det_boxes = np.asarray([d.box for d in det]).reshape(-1, 4)
            ious = iou_matrix(det_boxes, gt_boxes)

            matched_gt = set()
            order = np.argsort([-d.score for d in det])
            for det_index in order:
                if gt_boxes.shape[0] == 0:
                    breakdown.background_fp += 1
                    continue
                best_gt = int(np.argmax(ious[det_index]))
                best_iou = float(ious[det_index, best_gt])
                if best_iou >= hit_iou:
                    if best_gt in matched_gt:
                        breakdown.duplicates += 1
                    else:
                        matched_gt.add(best_gt)
                elif best_iou < loc_iou:
                    breakdown.background_fp += 1
                # IoU in [loc, hit): counted from the GT side below.

            for gt_index in range(gt_boxes.shape[0]):
                if gt_index in matched_gt:
                    breakdown.detected += 1
                    continue
                best = (
                    float(ious[:, gt_index].max())
                    if det_boxes.shape[0]
                    else 0.0
                )
                if best >= loc_iou:
                    breakdown.mislocalized += 1
                else:
                    breakdown.missed += 1
    return report
