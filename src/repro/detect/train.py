"""NanoDetector training: target assignment, loss, SGD loop.

Follows the paper's protocol (Section IV-B1): 20 epochs, batch size
16 images, on the 70% training split.  The loss combines per-class
objectness binary cross-entropy (with positive-class weighting to
counter the heavy cell-level imbalance) and an L2 box-regression term
applied only at positive cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.indicators import ALL_INDICATORS
from ..gsv.dataset import LabeledImage
from .boxes import xyxy_to_cxcywh
from .features import cell_bounds, extract_features
from .model import N_CLASSES, ModelConfig, NanoDetector, sigmoid

#: A cell is positive for an object covering at least this fraction of
#: the cell's area.
CELL_COVER_THRESHOLD = 0.25


@dataclass(frozen=True)
class TrainConfig:
    """Training hyperparameters (paper defaults where stated)."""

    epochs: int = 20
    batch_size: int = 16
    learning_rate: float = 0.08
    momentum: float = 0.9
    weight_decay: float = 1e-4
    box_weight: float = 5.0
    lr_decay: float = 0.97
    pos_weight_cap: float = 15.0
    seed: int = 0


@dataclass
class TrainResult:
    """Fitted model plus the loss trajectory."""

    model: NanoDetector
    loss_history: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")


def assign_targets(
    annotations: list, grid: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cell training targets for one image.

    ``annotations`` items are ``(indicator, bbox)`` or
    ``(indicator, bbox, occupancy)`` where ``occupancy`` is a list of
    sub-boxes tightly covering the object's rendered footprint (see
    :mod:`repro.scene.occupancy`); it defaults to the bbox itself.

    Returns ``(obj (n_cells, C), box (n_cells, C, 4) cxcywh)``.  A cell
    is positive for a class when the object's *occupancy* covers at
    least :data:`CELL_COVER_THRESHOLD` of the cell (ties go to the
    object with the larger overlap); the center cell of each occupancy
    box is always positive so thin objects are never dropped.  The box
    regression target is always the full bounding box.
    """
    n_cells = grid * grid
    obj = np.zeros((n_cells, N_CLASSES))
    box = np.zeros((n_cells, N_CLASSES, 4))
    if not annotations:
        return obj, box
    bounds = cell_bounds(grid)
    cell_area = 1.0 / n_cells
    best_cover = np.zeros((n_cells, N_CLASSES))
    class_index = {ind: i for i, ind in enumerate(ALL_INDICATORS)}

    for annotation in annotations:
        if len(annotation) == 3:
            indicator, bbox, occupancy = annotation
        else:
            indicator, bbox = annotation
            occupancy = [bbox]
        c = class_index[indicator]
        target = xyxy_to_cxcywh(
            np.array([[bbox.x_min, bbox.y_min, bbox.x_max, bbox.y_max]])
        )[0]

        cover = np.zeros(n_cells)
        for part in occupancy:
            x0 = np.maximum(bounds[:, 0], part.x_min)
            y0 = np.maximum(bounds[:, 1], part.y_min)
            x1 = np.minimum(bounds[:, 2], part.x_max)
            y1 = np.minimum(bounds[:, 3], part.y_max)
            part_cover = (
                np.clip(x1 - x0, 0.0, None) * np.clip(y1 - y0, 0.0, None)
            ) / cell_area
            cover = np.maximum(cover, part_cover)
        if cover.max() < CELL_COVER_THRESHOLD:
            # Tiny object: claim its single best-covered cell so every
            # annotation supervises at least one cell.
            cover[int(np.argmax(cover))] = CELL_COVER_THRESHOLD

        take = (cover >= CELL_COVER_THRESHOLD) & (cover > best_cover[:, c])
        obj[take, c] = 1.0
        box[take, c, :] = target
        best_cover[take, c] = cover[take]
    return obj, box


def _image_tensors(
    image: LabeledImage, grid: int, use_occupancy: bool, config
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Features and targets for one image (the unit of caching)."""
    features = extract_features(image.render(), config)
    if use_occupancy:
        annotations = annotations_with_occupancy(image)
    else:
        annotations = [(ind, box, [box]) for ind, box in image.annotations]
    obj, box = assign_targets(annotations, grid)
    return features, obj, box


def _tensor_chunk(payload) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Process-pool worker: tensors for a chunk of images.

    Module-level (and fed a single picklable payload) so the process
    backend can ship it to children; per-image results are independent
    of how images are chunked, which is what makes the fan-out
    byte-identical to the serial path.
    """
    images, grid, use_occupancy, config = payload
    return [
        _image_tensors(image, grid, use_occupancy, config) for image in images
    ]


def image_tensor_key(
    image: LabeledImage, grid: int, use_occupancy: bool, config
) -> str:
    """Artifact-cache key for one image's feature/target tensors."""
    from ..artifacts import fingerprint, image_fingerprint

    return fingerprint(
        {
            "artifact": "training-tensors",
            "image": image_fingerprint(image),
            "grid": grid,
            "use_occupancy": use_occupancy,
            "config": (config.grid, config.smooth, config.context),
        }
    )


#: Images per process-pool task: large enough to amortize pickling a
#: task envelope, small enough to keep all workers busy on small sets.
TENSOR_CHUNK_SIZE = 8


def build_training_tensors(
    images: list[LabeledImage],
    grid: int,
    use_occupancy: bool = True,
    feature_config=None,
    workers: int | str = 1,
    chunk_size: int = TENSOR_CHUNK_SIZE,
    cache=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extract features and targets for a list of labeled images.

    Returns ``(features (N, n_cells, D), obj (N, n_cells, C),
    box (N, n_cells, C, 4))``.  ``use_occupancy=False`` falls back to
    bbox-footprint target assignment (the design-ablation baseline).

    ``workers > 1`` fans the per-image work (render + feature pyramid +
    target assignment, the suite's dominant CPU cost) out to a process
    pool in chunks of ``chunk_size``; results are byte-identical to
    serial for any chunking because every image is computed
    independently and reassembled in input order.  ``cache`` (an
    :class:`~repro.artifacts.ArtifactCache`) persists per-image
    tensors, so an augmentation sweep that reuses base images only
    pays for the transformed copies.
    """
    from ..parallel import ParallelExecutor
    from .features import FeatureConfig

    config = feature_config or FeatureConfig(grid=grid)
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive: {chunk_size}")

    per_image: list[tuple[np.ndarray, np.ndarray, np.ndarray] | None]
    per_image = [None] * len(images)
    missing: list[int] = []
    keys: list[str | None] = [None] * len(images)
    if cache is not None:
        for index, image in enumerate(images):
            keys[index] = image_tensor_key(image, grid, use_occupancy, config)
            stored = cache.get_arrays("tensors", keys[index])
            if stored is not None:
                per_image[index] = (
                    stored["features"], stored["obj"], stored["box"]
                )
            else:
                missing.append(index)
    else:
        missing = list(range(len(images)))

    if missing:
        chunks = [
            missing[start : start + chunk_size]
            for start in range(0, len(missing), chunk_size)
        ]
        executor = ParallelExecutor(workers=workers, cpu_bound=True)
        payloads = [
            ([images[index] for index in chunk], grid, use_occupancy, config)
            for chunk in chunks
        ]
        for chunk, results in zip(
            chunks, executor.map_results(_tensor_chunk, payloads)
        ):
            for index, tensors in zip(chunk, results):
                per_image[index] = tensors
                if cache is not None:
                    features, obj, box = tensors
                    cache.put_arrays(
                        "tensors",
                        keys[index],
                        features=features,
                        obj=obj,
                        box=box,
                    )

    feats = [tensors[0] for tensors in per_image]
    objs = [tensors[1] for tensors in per_image]
    boxes = [tensors[2] for tensors in per_image]
    return np.stack(feats), np.stack(objs), np.stack(boxes)


def annotations_with_occupancy(image: LabeledImage) -> list:
    """Attach occupancy footprints to an image's annotations.

    Uses the scene's structured geometry when the annotation list
    matches the scene's objects one-to-one (the normal case for survey
    datasets); otherwise falls back to bbox occupancy.
    """
    from ..scene.occupancy import occupancy_boxes

    if image.occupancy is not None:
        return list(image.occupancy)
    scene_objects = image.scene.objects if image.scene is not None else ()
    if len(scene_objects) == len(image.annotations) and all(
        obj.indicator == ind and obj.box == box
        for obj, (ind, box) in zip(scene_objects, image.annotations)
    ):
        return [
            (obj.indicator, obj.box, occupancy_boxes(obj))
            for obj in scene_objects
        ]
    return [(ind, box, [box]) for ind, box in image.annotations]


def _positive_weights(obj: np.ndarray, cap: float) -> np.ndarray:
    """Per-class BCE positive weights from cell-level class balance.

    The cap bounds the recall/precision trade: an uncapped weight on a
    rare class (streetlight cells are ~0.5% of all cells) makes false
    positives nearly free relative to misses.
    """
    flat = obj.reshape(-1, N_CLASSES)
    positives = flat.sum(axis=0)
    negatives = flat.shape[0] - positives
    weights = np.where(positives > 0, negatives / np.maximum(positives, 1.0), 1.0)
    return np.clip(weights, 1.0, cap)


def _weights_key(
    features: np.ndarray,
    obj_targets: np.ndarray,
    box_targets: np.ndarray,
    model_config: ModelConfig,
    train_config: TrainConfig,
) -> str:
    """Artifact-cache key for trained weights.

    Keyed on *what the trainer saw* — the tensor bytes plus both
    configs — so the precomputed-tensor path and the from-images path
    address the same entry, and any change to data or hyperparameters
    changes the key.
    """
    from ..artifacts import fingerprint, tensors_fingerprint

    return fingerprint(
        {
            "artifact": "detector-weights",
            "tensors": tensors_fingerprint(features, obj_targets, box_targets),
            "model_config": repr(model_config),
            "train_config": repr(train_config),
        }
    )


def train_detector(
    images: list[LabeledImage],
    model_config: ModelConfig | None = None,
    train_config: TrainConfig | None = None,
    precomputed: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    workers: int | str = 1,
    cache=None,
) -> TrainResult:
    """Train a NanoDetector on labeled images.

    ``precomputed`` lets callers reuse ``build_training_tensors``
    output across experiments (the augmentation sweep retrains many
    times on overlapping data).  ``workers`` parallelizes tensor
    building across processes (the SGD loop itself stays serial — it
    is a strict sequential dependence and already BLAS-vectorized).
    ``cache`` persists both per-image tensors and the trained weights;
    a rerun with identical inputs loads the fitted model from disk.
    """
    if model_config is None:
        model_config = ModelConfig()
    if train_config is None:
        train_config = TrainConfig()
    if not images and precomputed is None:
        raise ValueError("no training images")

    if precomputed is not None:
        features, obj_targets, box_targets = precomputed
    else:
        features, obj_targets, box_targets = build_training_tensors(
            images,
            model_config.grid,
            feature_config=model_config.feature_config,
            workers=workers,
            cache=cache,
        )

    weights_key = None
    if cache is not None:
        weights_key = _weights_key(
            features, obj_targets, box_targets, model_config, train_config
        )
        stored = cache.get_json("models", weights_key)
        if stored is not None:
            return TrainResult(
                model=NanoDetector.from_dict(stored["model"]),
                loss_history=list(stored["loss_history"]),
            )
    n_images, n_cells, feature_dim = features.shape

    rng = np.random.default_rng(train_config.seed)
    model = NanoDetector(config=model_config)
    model.initialize(feature_dim, rng)
    flat = features.reshape(-1, feature_dim)
    model.set_normalization(flat.mean(axis=0), flat.std(axis=0))

    pos_weight = _positive_weights(obj_targets, train_config.pos_weight_cap)
    velocity = {"w1": 0.0, "b1": 0.0, "w2": 0.0, "b2": 0.0}
    lr = train_config.learning_rate
    loss_history = []

    for _epoch in range(train_config.epochs):
        order = rng.permutation(n_images)
        epoch_loss = 0.0
        n_batches = 0
        for start in range(0, n_images, train_config.batch_size):
            batch = order[start : start + train_config.batch_size]
            x = features[batch].reshape(-1, feature_dim)
            obj_t = obj_targets[batch].reshape(-1, N_CLASSES)
            box_t = box_targets[batch].reshape(-1, N_CLASSES, 4)

            logits, hidden, x_std = model.forward(x)
            obj_logits, box_logits = model.split_logits(logits)
            obj_p = sigmoid(obj_logits)
            box_p = sigmoid(box_logits)

            n = x.shape[0]
            # Weighted BCE on objectness.
            weights = np.where(obj_t > 0.5, pos_weight[None, :], 1.0)
            eps = 1e-9
            bce = -(
                obj_t * np.log(obj_p + eps)
                + (1.0 - obj_t) * np.log(1.0 - obj_p + eps)
            )
            obj_loss = float((weights * bce).sum() / n)
            grad_obj = weights * (obj_p - obj_t) / n

            # L2 box loss at positive cells only.  Small objects get
            # proportionally larger weight: the same absolute error
            # costs a thin pole far more IoU than it costs a road.
            size_weight = 1.0 / np.clip(
                np.sqrt(box_t[:, :, 2] * box_t[:, :, 3]), 0.15, 1.0
            )
            mask = obj_t[:, :, None] * size_weight[:, :, None]
            diff = (box_p - box_t) * mask
            n_pos = max(float(mask.sum()), 1.0)
            box_loss = float(
                train_config.box_weight * np.square(diff).sum() / n_pos
            )
            grad_box = (
                2.0
                * train_config.box_weight
                * diff
                * box_p
                * (1.0 - box_p)
                / n_pos
            )

            grad_logits = np.empty_like(logits)
            reshaped = grad_logits.reshape(n, N_CLASSES, 5)
            reshaped[:, :, 0] = grad_obj
            reshaped[:, :, 1:] = grad_box

            grads = model.backward(grad_logits, hidden, x_std)
            for name in ("w1", "b1", "w2", "b2"):
                parameter = getattr(model, name)
                grad = grads[name]
                if name in ("w1", "w2"):
                    grad = grad + train_config.weight_decay * parameter
                velocity[name] = (
                    train_config.momentum * velocity[name] - lr * grad
                )
                setattr(model, name, parameter + velocity[name])

            epoch_loss += obj_loss + box_loss
            n_batches += 1
        loss_history.append(epoch_loss / max(n_batches, 1))
        lr *= train_config.lr_decay

    if cache is not None and weights_key is not None:
        cache.put_json(
            "models",
            weights_key,
            {"model": model.to_dict(), "loss_history": loss_history},
        )
    return TrainResult(model=model, loss_history=loss_history)
