"""NanoDetector training: target assignment, loss, SGD loop.

Follows the paper's protocol (Section IV-B1): 20 epochs, batch size
16 images, on the 70% training split.  The loss combines per-class
objectness binary cross-entropy (with positive-class weighting to
counter the heavy cell-level imbalance) and an L2 box-regression term
applied only at positive cells.

The SGD loop runs over a :class:`~repro.parallel.arena.TensorArena`:
batch gathers, forward activations and backward gradients live in
reusable buffers instead of being reallocated thousands of times per
run.  The operations themselves are unchanged, so trained weights are
bit-identical to the historical allocating loop.

**Incremental training** (DESIGN.md §14): when an artifact cache is
supplied and only part of the dataset's per-image tensors changed
since the last run with the same configs, :func:`train_detector` can
fine-tune the cached weights on the changed images (plus a replay
sample of unchanged ones) instead of retraining from scratch — gated
in tests by an eval-metric equivalence check against full retraining.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.indicators import ALL_INDICATORS
from ..gsv.dataset import LabeledImage
from ..parallel.arena import TensorArena
from .boxes import xyxy_to_cxcywh
from .features import FEATURE_DIM, cell_bounds, extract_features_batch
from .model import N_CLASSES, ModelConfig, NanoDetector, sigmoid

#: A cell is positive for an object covering at least this fraction of
#: the cell's area.
CELL_COVER_THRESHOLD = 0.25


@dataclass(frozen=True)
class TrainConfig:
    """Training hyperparameters (paper defaults where stated)."""

    epochs: int = 20
    batch_size: int = 16
    learning_rate: float = 0.08
    momentum: float = 0.9
    weight_decay: float = 1e-4
    box_weight: float = 5.0
    lr_decay: float = 0.97
    pos_weight_cap: float = 15.0
    seed: int = 0


@dataclass(frozen=True)
class IncrementalConfig:
    """Knobs for the cached-weights fine-tuning path.

    ``max_changed_fraction`` bounds how different the dataset may be
    before falling back to a full retrain; ``replay_ratio`` controls
    how many unchanged images accompany each changed one in the
    fine-tuning subset (pure-delta fine-tuning forgets; full-set
    fine-tuning wastes the reuse).
    """

    max_changed_fraction: float = 0.35
    fine_tune_epochs: int = 6
    lr_scale: float = 0.25
    replay_ratio: float = 2.0


@dataclass
class TrainResult:
    """Fitted model plus the loss trajectory and training provenance.

    ``mode`` is ``"full"`` (fresh SGD), ``"cached"`` (exact
    artifact-cache hit) or ``"incremental"`` (fine-tuned from cached
    base weights); ``reused_images`` counts images whose tensors
    matched the cached base run.
    """

    model: NanoDetector
    loss_history: list[float] = field(default_factory=list)
    mode: str = "full"
    reused_images: int = 0
    trained_images: int = 0

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")


def assign_targets(
    annotations: list, grid: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cell training targets for one image.

    ``annotations`` items are ``(indicator, bbox)`` or
    ``(indicator, bbox, occupancy)`` where ``occupancy`` is a list of
    sub-boxes tightly covering the object's rendered footprint (see
    :mod:`repro.scene.occupancy`); it defaults to the bbox itself.

    Returns ``(obj (n_cells, C), box (n_cells, C, 4) cxcywh)``.  A cell
    is positive for a class when the object's *occupancy* covers at
    least :data:`CELL_COVER_THRESHOLD` of the cell (ties go to the
    object with the larger overlap); the center cell of each occupancy
    box is always positive so thin objects are never dropped.  The box
    regression target is always the full bounding box.
    """
    n_cells = grid * grid
    obj = np.zeros((n_cells, N_CLASSES))
    box = np.zeros((n_cells, N_CLASSES, 4))
    if not annotations:
        return obj, box
    bounds = cell_bounds(grid)
    cell_area = 1.0 / n_cells
    best_cover = np.zeros((n_cells, N_CLASSES))
    class_index = {ind: i for i, ind in enumerate(ALL_INDICATORS)}

    for annotation in annotations:
        if len(annotation) == 3:
            indicator, bbox, occupancy = annotation
        else:
            indicator, bbox = annotation
            occupancy = [bbox]
        c = class_index[indicator]
        target = xyxy_to_cxcywh(
            np.array([[bbox.x_min, bbox.y_min, bbox.x_max, bbox.y_max]])
        )[0]

        cover = np.zeros(n_cells)
        for part in occupancy:
            x0 = np.maximum(bounds[:, 0], part.x_min)
            y0 = np.maximum(bounds[:, 1], part.y_min)
            x1 = np.minimum(bounds[:, 2], part.x_max)
            y1 = np.minimum(bounds[:, 3], part.y_max)
            part_cover = (
                np.clip(x1 - x0, 0.0, None) * np.clip(y1 - y0, 0.0, None)
            ) / cell_area
            cover = np.maximum(cover, part_cover)
        if cover.max() < CELL_COVER_THRESHOLD:
            # Tiny object: claim its single best-covered cell so every
            # annotation supervises at least one cell.
            cover[int(np.argmax(cover))] = CELL_COVER_THRESHOLD

        take = (cover >= CELL_COVER_THRESHOLD) & (cover > best_cover[:, c])
        obj[take, c] = 1.0
        box[take, c, :] = target
        best_cover[take, c] = cover[take]
    return obj, box


def _tensor_chunk(payload) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Process-pool worker: tensors for a chunk of images.

    Module-level (and fed a single picklable payload) so the process
    backend can ship it to children; per-image results are independent
    of how images are chunked, which is what makes the fan-out
    byte-identical to the serial path.  Feature extraction runs through
    :func:`extract_features_batch` with one arena per chunk, so scratch
    buffers are reused across the chunk's images.
    """
    images, grid, use_occupancy, config = payload
    features = extract_features_batch(
        [image.render() for image in images], config, arena=TensorArena()
    )
    results = []
    for index, image in enumerate(images):
        if use_occupancy:
            annotations = annotations_with_occupancy(image)
        else:
            annotations = [
                (ind, box, [box]) for ind, box in image.annotations
            ]
        obj, box = assign_targets(annotations, grid)
        results.append((features[index], obj, box))
    return results


def image_tensor_key(
    image: LabeledImage, grid: int, use_occupancy: bool, config
) -> str:
    """Artifact-cache key for one image's feature/target tensors."""
    from ..artifacts import fingerprint, image_fingerprint

    return fingerprint(
        {
            "artifact": "training-tensors",
            "image": image_fingerprint(image),
            "grid": grid,
            "use_occupancy": use_occupancy,
            "config": (config.grid, config.smooth, config.context),
        }
    )


#: Images per process-pool task: large enough to amortize pickling a
#: task envelope, small enough to keep all workers busy on small sets.
TENSOR_CHUNK_SIZE = 8


def build_training_tensors(
    images: list[LabeledImage],
    grid: int,
    use_occupancy: bool = True,
    feature_config=None,
    workers: int | str = 1,
    chunk_size: int = TENSOR_CHUNK_SIZE,
    cache=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extract features and targets for a list of labeled images.

    Returns ``(features (N, n_cells, D), obj (N, n_cells, C),
    box (N, n_cells, C, 4))``.  ``use_occupancy=False`` falls back to
    bbox-footprint target assignment (the design-ablation baseline).

    ``workers > 1`` fans the per-image work (render + feature pyramid +
    target assignment, the suite's dominant CPU cost) out to a process
    pool in chunks of ``chunk_size``; results are byte-identical to
    serial for any chunking because every image is computed
    independently and reassembled in input order.  ``cache`` (an
    :class:`~repro.artifacts.ArtifactCache`) persists per-image
    tensors, so an augmentation sweep that reuses base images only
    pays for the transformed copies.

    The three output tensors are preallocated once and filled in place
    — per-image results are copied straight into their rows instead of
    accumulating a list and paying a doubling ``np.stack`` at the end.
    """
    from ..parallel import ParallelExecutor
    from .features import FeatureConfig

    config = feature_config or FeatureConfig(grid=grid)
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive: {chunk_size}")
    if not images:
        raise ValueError(
            "no images to build training tensors from (empty image list)"
        )

    n_images = len(images)
    n_cells = grid * grid
    features = np.empty((n_images, config.n_cells, FEATURE_DIM))
    obj = np.empty((n_images, n_cells, N_CLASSES))
    box = np.empty((n_images, n_cells, N_CLASSES, 4))

    def _store(index, tensors):
        features[index] = tensors[0]
        obj[index] = tensors[1]
        box[index] = tensors[2]

    missing: list[int] = []
    keys: list[str | None] = [None] * n_images
    if cache is not None:
        for index, image in enumerate(images):
            keys[index] = image_tensor_key(image, grid, use_occupancy, config)
            stored = cache.get_arrays("tensors", keys[index])
            if stored is not None:
                _store(index, (stored["features"], stored["obj"], stored["box"]))
            else:
                missing.append(index)
    else:
        missing = list(range(n_images))

    if missing:
        chunks = [
            missing[start : start + chunk_size]
            for start in range(0, len(missing), chunk_size)
        ]
        executor = ParallelExecutor(workers=workers, cpu_bound=True)
        payloads = [
            ([images[index] for index in chunk], grid, use_occupancy, config)
            for chunk in chunks
        ]
        for chunk, results in zip(
            chunks, executor.map_results(_tensor_chunk, payloads)
        ):
            for index, tensors in zip(chunk, results):
                _store(index, tensors)
                if cache is not None:
                    cache.put_arrays(
                        "tensors",
                        keys[index],
                        features=tensors[0],
                        obj=tensors[1],
                        box=tensors[2],
                    )

    return features, obj, box


def annotations_with_occupancy(image: LabeledImage) -> list:
    """Attach occupancy footprints to an image's annotations.

    Uses the scene's structured geometry when the annotation list
    matches the scene's objects one-to-one (the normal case for survey
    datasets); otherwise falls back to bbox occupancy.
    """
    from ..scene.occupancy import occupancy_boxes

    if image.occupancy is not None:
        return list(image.occupancy)
    scene_objects = image.scene.objects if image.scene is not None else ()
    if len(scene_objects) == len(image.annotations) and all(
        obj.indicator == ind and obj.box == box
        for obj, (ind, box) in zip(scene_objects, image.annotations)
    ):
        return [
            (obj.indicator, obj.box, occupancy_boxes(obj))
            for obj in scene_objects
        ]
    return [(ind, box, [box]) for ind, box in image.annotations]


def _positive_weights(obj: np.ndarray, cap: float) -> np.ndarray:
    """Per-class BCE positive weights from cell-level class balance.

    The cap bounds the recall/precision trade: an uncapped weight on a
    rare class (streetlight cells are ~0.5% of all cells) makes false
    positives nearly free relative to misses.
    """
    flat = obj.reshape(-1, N_CLASSES)
    positives = flat.sum(axis=0)
    negatives = flat.shape[0] - positives
    weights = np.where(positives > 0, negatives / np.maximum(positives, 1.0), 1.0)
    return np.clip(weights, 1.0, cap)


def _weights_key(
    features: np.ndarray,
    obj_targets: np.ndarray,
    box_targets: np.ndarray,
    model_config: ModelConfig,
    train_config: TrainConfig,
) -> str:
    """Artifact-cache key for trained weights.

    Keyed on *what the trainer saw* — the tensor bytes plus both
    configs — so the precomputed-tensor path and the from-images path
    address the same entry, and any change to data or hyperparameters
    changes the key.
    """
    from ..artifacts import fingerprint, tensors_fingerprint

    return fingerprint(
        {
            "artifact": "detector-weights",
            "tensors": tensors_fingerprint(features, obj_targets, box_targets),
            "model_config": repr(model_config),
            "train_config": repr(train_config),
        }
    )


def _incremental_base_key(
    model_config: ModelConfig, train_config: TrainConfig
) -> str:
    """Cache key for the incremental-training base entry.

    Deliberately *not* keyed on the tensors: the entry is the "last
    training run with these configs", and the changed-fraction guard
    decides whether the current dataset is close enough to reuse it.
    """
    from ..artifacts import fingerprint

    return fingerprint(
        {
            "artifact": "incremental-base",
            "model_config": repr(model_config),
            "train_config": repr(train_config),
        }
    )


def _run_sgd(
    model: NanoDetector,
    features: np.ndarray,
    obj_targets: np.ndarray,
    box_targets: np.ndarray,
    train_config: TrainConfig,
    rng: np.random.Generator,
    epochs: int,
    learning_rate: float,
    arena: TensorArena | None = None,
) -> list[float]:
    """The SGD loop, shared by full training and incremental fine-tuning.

    Batch gathers, activations and gradients live in ``arena`` buffers;
    every floating-point operation matches the historical allocating
    loop in kind and order, so the fitted weights are bit-identical to
    it (the parameter arrays themselves are still freshly bound each
    step — callers' arrays are never mutated, and the model's
    inference-tier caches invalidate by identity).
    """
    if arena is None:
        arena = TensorArena()
    n_images, n_cells, feature_dim = features.shape
    pos_weight = _positive_weights(obj_targets, train_config.pos_weight_cap)
    velocity = {
        name: np.zeros_like(getattr(model, name))
        for name in ("w1", "b1", "w2", "b2")
    }
    lr = learning_rate
    loss_history: list[float] = []

    for _epoch in range(epochs):
        order = rng.permutation(n_images)
        epoch_loss = 0.0
        n_batches = 0
        for start in range(0, n_images, train_config.batch_size):
            batch = order[start : start + train_config.batch_size]
            gathered = arena.take(
                "sgd.x", (len(batch), n_cells, feature_dim)
            )
            np.take(features, batch, axis=0, out=gathered)
            x = gathered.reshape(-1, feature_dim)
            obj_gathered = arena.take(
                "sgd.obj", (len(batch), n_cells, N_CLASSES)
            )
            np.take(obj_targets, batch, axis=0, out=obj_gathered)
            obj_t = obj_gathered.reshape(-1, N_CLASSES)
            box_gathered = arena.take(
                "sgd.box", (len(batch), n_cells, N_CLASSES, 4)
            )
            np.take(box_targets, batch, axis=0, out=box_gathered)
            box_t = box_gathered.reshape(-1, N_CLASSES, 4)

            logits, hidden, x_std = model.forward(x, arena=arena)
            obj_logits, box_logits = model.split_logits(logits)
            obj_p = sigmoid(obj_logits)
            box_p = sigmoid(box_logits)

            n = x.shape[0]
            # Weighted BCE on objectness.
            weights = np.where(obj_t > 0.5, pos_weight[None, :], 1.0)
            eps = 1e-9
            bce = -(
                obj_t * np.log(obj_p + eps)
                + (1.0 - obj_t) * np.log(1.0 - obj_p + eps)
            )
            obj_loss = float((weights * bce).sum() / n)
            grad_obj = weights * (obj_p - obj_t) / n

            # L2 box loss at positive cells only.  Small objects get
            # proportionally larger weight: the same absolute error
            # costs a thin pole far more IoU than it costs a road.
            size_weight = 1.0 / np.clip(
                np.sqrt(box_t[:, :, 2] * box_t[:, :, 3]), 0.15, 1.0
            )
            mask = obj_t[:, :, None] * size_weight[:, :, None]
            diff = (box_p - box_t) * mask
            n_pos = max(float(mask.sum()), 1.0)
            box_loss = float(
                train_config.box_weight * np.square(diff).sum() / n_pos
            )
            grad_box = (
                2.0
                * train_config.box_weight
                * diff
                * box_p
                * (1.0 - box_p)
                / n_pos
            )

            grad_logits = arena.take("sgd.grad_logits", logits.shape)
            reshaped = grad_logits.reshape(n, N_CLASSES, 5)
            reshaped[:, :, 0] = grad_obj
            reshaped[:, :, 1:] = grad_box

            grads = model.backward(grad_logits, hidden, x_std, arena=arena)
            for name in ("w1", "b1", "w2", "b2"):
                parameter = getattr(model, name)
                grad = grads[name]
                if name in ("w1", "w2"):
                    # grad += weight_decay * parameter, legacy order.
                    decay = arena.take(f"sgd.decay.{name}", parameter.shape)
                    np.multiply(train_config.weight_decay, parameter, out=decay)
                    np.add(grad, decay, out=grad)
                # velocity = momentum * velocity - lr * grad, in place.
                np.multiply(train_config.momentum, velocity[name], out=velocity[name])
                np.multiply(lr, grad, out=grad)
                np.subtract(velocity[name], grad, out=velocity[name])
                # Bind a fresh parameter array (never mutate the old
                # one): callers may hold references, and the inference
                # tier caches invalidate by array identity.
                setattr(model, name, parameter + velocity[name])

            epoch_loss += obj_loss + box_loss
            n_batches += 1
        loss_history.append(epoch_loss / max(n_batches, 1))
        lr *= train_config.lr_decay
    return loss_history


def train_detector(
    images: list[LabeledImage],
    model_config: ModelConfig | None = None,
    train_config: TrainConfig | None = None,
    precomputed: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    workers: int | str = 1,
    cache=None,
    incremental: bool = False,
    incremental_config: IncrementalConfig | None = None,
) -> TrainResult:
    """Train a NanoDetector on labeled images.

    ``precomputed`` lets callers reuse ``build_training_tensors``
    output across experiments (the augmentation sweep retrains many
    times on overlapping data).  ``workers`` parallelizes tensor
    building across processes (the SGD loop itself stays serial — it
    is a strict sequential dependence and already BLAS-vectorized).
    ``cache`` persists both per-image tensors and the trained weights;
    a rerun with identical inputs loads the fitted model from disk.

    ``incremental=True`` (requires ``cache`` and ``images``) enables
    delta fine-tuning: if a previous run with the same configs trained
    on mostly the same per-image tensors, the cached weights are
    fine-tuned on the changed images plus a replay sample instead of
    retraining from scratch.  The result records its provenance in
    :attr:`TrainResult.mode`; only full retrains populate the exact
    weights cache, so incremental runs can never shadow a full run's
    artifact.
    """
    if model_config is None:
        model_config = ModelConfig()
    if train_config is None:
        train_config = TrainConfig()
    if not images and precomputed is None:
        raise ValueError("no training images")

    if precomputed is not None:
        features, obj_targets, box_targets = precomputed
        features = np.asarray(features)
        obj_targets = np.asarray(obj_targets)
        box_targets = np.asarray(box_targets)
        if features.shape[0] == 0:
            raise ValueError(
                "precomputed training tensors contain no images"
            )
    else:
        features, obj_targets, box_targets = build_training_tensors(
            images,
            model_config.grid,
            feature_config=model_config.feature_config,
            workers=workers,
            cache=cache,
        )

    weights_key = None
    if cache is not None:
        weights_key = _weights_key(
            features, obj_targets, box_targets, model_config, train_config
        )
        stored = cache.get_json("models", weights_key)
        if stored is not None:
            return TrainResult(
                model=NanoDetector.from_dict(stored["model"]),
                loss_history=list(stored["loss_history"]),
                mode="cached",
                reused_images=features.shape[0],
                trained_images=0,
            )
    n_images, n_cells, feature_dim = features.shape

    rng = np.random.default_rng(train_config.seed)
    arena = TensorArena()
    mode = "full"
    reused_images = 0
    trained_images = n_images
    image_keys: list[str] | None = None
    base_key = None
    model: NanoDetector | None = None
    loss_history: list[float] = []

    if incremental and cache is not None and images and precomputed is None:
        image_keys = [
            image_tensor_key(
                image, model_config.grid, True, model_config.feature_config
            )
            for image in images
        ]
        base_key = _incremental_base_key(model_config, train_config)
        base = cache.get_json("models", base_key)
        if base is not None:
            base_keys = set(base.get("image_keys", ()))
            changed = [
                index
                for index, key in enumerate(image_keys)
                if key not in base_keys
            ]
            changed_fraction = len(changed) / n_images
            incr = incremental_config or IncrementalConfig()
            if changed_fraction <= incr.max_changed_fraction:
                candidate = NanoDetector.from_dict(base["model"])
                if (
                    candidate.config == model_config
                    and candidate.w1.shape[0] == feature_dim
                ):
                    model = candidate
                    mode = "incremental"
                    reused_images = n_images - len(changed)
                    unchanged = np.array(
                        [
                            index
                            for index in range(n_images)
                            if image_keys[index] in base_keys
                        ],
                        dtype=int,
                    )
                    n_replay = min(
                        len(unchanged),
                        int(np.ceil(incr.replay_ratio * max(len(changed), 1))),
                    )
                    replay = (
                        rng.choice(unchanged, size=n_replay, replace=False)
                        if n_replay
                        else np.zeros(0, dtype=int)
                    )
                    subset = np.sort(
                        np.concatenate([np.array(changed, dtype=int), replay])
                    )
                    trained_images = len(subset)
                    if trained_images:
                        loss_history = _run_sgd(
                            model,
                            features[subset],
                            obj_targets[subset],
                            box_targets[subset],
                            train_config,
                            rng,
                            epochs=incr.fine_tune_epochs,
                            learning_rate=(
                                train_config.learning_rate * incr.lr_scale
                            ),
                            arena=arena,
                        )
                    else:
                        loss_history = list(base.get("loss_history", ()))

    if model is None:
        model = NanoDetector(config=model_config)
        model.initialize(feature_dim, rng)
        flat = features.reshape(-1, feature_dim)
        model.set_normalization(flat.mean(axis=0), flat.std(axis=0))
        loss_history = _run_sgd(
            model,
            features,
            obj_targets,
            box_targets,
            train_config,
            rng,
            epochs=train_config.epochs,
            learning_rate=train_config.learning_rate,
            arena=arena,
        )

    if cache is not None:
        if weights_key is not None and mode == "full":
            cache.put_json(
                "models",
                weights_key,
                {"model": model.to_dict(), "loss_history": loss_history},
            )
        if incremental and base_key is not None and image_keys is not None:
            cache.put_json(
                "models",
                base_key,
                {
                    "model": model.to_dict(),
                    "loss_history": loss_history,
                    "image_keys": image_keys,
                    "mode": mode,
                },
            )
    return TrainResult(
        model=model,
        loss_history=loss_history,
        mode=mode,
        reused_images=reused_images,
        trained_images=trained_images,
    )
