"""Thread- and process-safe metrics: counters, gauges, histograms.

A county-scale survey fans work across threads and processes, and when
it misbehaves the first question is always quantitative: how many
fetches, how many cache hits, how many retries, where did the time
go?  :class:`MetricsRegistry` answers those questions with three
instrument kinds, all behind one lock:

* **counters** — monotonically increasing floats (``inc``);
* **gauges** — last-written values (``set_gauge``);
* **histograms** — fixed-bucket-edge distributions (``observe``),
  recording per-bucket counts plus total count and sum.

Process safety is achieved by *delta merging* rather than shared
state: a child process accumulates into its own module-level registry
(every process imports a fresh one), and the
:class:`~repro.parallel.executor.ParallelExecutor` process backend
snapshots the child registry around each task and ships the delta
back inside the :class:`~repro.parallel.executor.TaskOutcome`.  The
parent merges deltas in submission order, so the merged totals are
deterministic for a deterministic workload.

Snapshots are plain sorted dicts (JSON-ready); ``delta_since``
subtracts two snapshots so callers can report exactly what one survey
or suite run contributed, regardless of what else the registry saw.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = [
    "DEFAULT_BUCKET_EDGES",
    "MetricsRegistry",
    "get_metrics",
    "reset_metrics",
    "use_metrics",
]

#: Default histogram bucket edges (seconds-flavored; callers may pass
#: their own).  A value lands in the first bucket whose edge is >= it,
#: with one overflow bucket past the last edge.
DEFAULT_BUCKET_EDGES = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
)


class _Histogram:
    """Fixed-edge histogram: bucket counts, total count, total sum."""

    __slots__ = ("edges", "counts", "count", "total")

    def __init__(self, edges: tuple[float, ...]) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError(f"edges must be sorted and non-empty: {edges}")
        self.edges = tuple(float(edge) for edge in edges)
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        index = len(self.edges)
        for position, edge in enumerate(self.edges):
            if value <= edge:
                index = position
                break
        self.counts[index] += 1
        self.count += 1
        self.total += value

    def as_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms behind one lock.

    All mutators are thread-safe; cross-process aggregation goes
    through :meth:`snapshot` / :meth:`delta_since` / :meth:`merge`
    (see the module docstring).  Metric names are plain dotted
    strings (``"llm.cache.hits"``); the taxonomy lives in
    DESIGN.md §11.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    # ------------------------------------------------------------------
    # instruments

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` (>= 0) to the named counter."""
        if value < 0:
            raise ValueError(f"counters only increase: {name}={value}")
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of the named gauge."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        edges: tuple[float, ...] = DEFAULT_BUCKET_EDGES,
    ) -> None:
        """Add one observation to the named histogram.

        The bucket edges are fixed by the first observation; a later
        call with different edges is an error (silently re-bucketing
        would make merged histograms incoherent).
        """
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = _Histogram(tuple(edges))
                self._histograms[name] = histogram
            elif histogram.edges != tuple(float(e) for e in edges):
                raise ValueError(
                    f"histogram {name!r} already registered with edges "
                    f"{histogram.edges}, got {tuple(edges)}"
                )
            histogram.observe(value)

    # ------------------------------------------------------------------
    # snapshots and merging

    def snapshot(self) -> dict:
        """Deterministic (sorted-key) JSON-ready copy of every metric."""
        with self._lock:
            return {
                "counters": {
                    name: self._counters[name]
                    for name in sorted(self._counters)
                },
                "gauges": {
                    name: self._gauges[name] for name in sorted(self._gauges)
                },
                "histograms": {
                    name: self._histograms[name].as_dict()
                    for name in sorted(self._histograms)
                },
            }

    def delta_since(self, before: dict) -> dict:
        """What this registry accumulated after ``before`` was taken.

        Counters and histograms subtract; gauges report their current
        value (a gauge has no meaningful difference).  Metrics that
        did not move are omitted, so an idle registry yields an empty
        delta.
        """
        now = self.snapshot()
        counters = {}
        for name, value in now["counters"].items():
            moved = value - before.get("counters", {}).get(name, 0.0)
            if moved:
                counters[name] = moved
        gauges = {
            name: value
            for name, value in now["gauges"].items()
            if value != before.get("gauges", {}).get(name)
        }
        histograms = {}
        for name, hist in now["histograms"].items():
            prior = before.get("histograms", {}).get(name)
            if prior is None:
                if hist["count"]:
                    histograms[name] = hist
                continue
            if prior.get("edges") != hist["edges"]:
                histograms[name] = hist
                continue
            moved_counts = [
                new - old
                for new, old in zip(hist["counts"], prior["counts"])
            ]
            if any(moved_counts):
                histograms[name] = {
                    "edges": hist["edges"],
                    "counts": moved_counts,
                    "count": hist["count"] - prior["count"],
                    "sum": hist["sum"] - prior["sum"],
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge(self, delta: dict) -> None:
        """Fold a snapshot/delta dict into this registry.

        Counters and histogram buckets add; gauges overwrite.  This is
        how child-process contributions land in the parent: the
        executor merges each task's delta in submission order, keeping
        the merged totals deterministic.
        """
        counters = delta.get("counters", {})
        gauges = delta.get("gauges", {})
        histograms = delta.get("histograms", {})
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            for name, value in gauges.items():
                self._gauges[name] = float(value)
            for name, payload in histograms.items():
                edges = tuple(float(e) for e in payload["edges"])
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = _Histogram(edges)
                    self._histograms[name] = histogram
                if histogram.edges != edges:
                    raise ValueError(
                        f"cannot merge histogram {name!r}: edge mismatch"
                    )
                for index, moved in enumerate(payload["counts"]):
                    histogram.counts[index] += moved
                histogram.count += payload["count"]
                histogram.total += payload["sum"]

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def is_empty(self) -> bool:
        with self._lock:
            return not (self._counters or self._gauges or self._histograms)


def nonempty_delta(delta: dict) -> bool:
    """Did anything move in a ``delta_since`` result?"""
    return bool(
        delta.get("counters")
        or delta.get("gauges")
        or delta.get("histograms")
    )


#: The process-wide default registry.  Instrumented library code reads
#: it through :func:`get_metrics` at call time, so tests (and the
#: CLI) can swap in a scoped registry with :func:`use_metrics`.
_DEFAULT = MetricsRegistry()
_active = _DEFAULT


def get_metrics() -> MetricsRegistry:
    """The currently active registry (the process default, usually)."""
    return _active


def reset_metrics() -> None:
    """Clear the active registry (test isolation helper)."""
    _active.reset()


@contextmanager
def use_metrics(registry: MetricsRegistry):
    """Temporarily route instrumentation into ``registry``."""
    global _active
    previous = _active
    _active = registry
    try:
        yield registry
    finally:
        _active = previous
