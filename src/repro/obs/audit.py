"""Determinism audit: metrics must reconcile with report counters.

The survey pipeline keeps two independent sets of books.  The
:class:`~repro.core.pipeline.SurveyReport` carries the *semantic*
counters that have existed since PR 1 (completed/failed locations,
images classified, retry totals, cache/coalescing deltas), and the
observability layer counts the same events again through
:class:`~repro.obs.metrics.MetricsRegistry`.  If the two ever
disagree, either an event went unmeasured or a measurement double
counted — both are bugs worth failing a build over.

:func:`reconcile_survey` cross-checks every counter pair and returns
the mismatches (empty list = books balance).  It assumes the metrics
delta spans exactly one survey on an otherwise-quiet registry, which
is how :meth:`NeighborhoodDecoder.survey` records
``SurveyReport.metrics`` and how the tests drive it.

:func:`audit_trace` validates a recorded trace structurally: every
parent id resolves, span ids are unique, and the expected stage names
are present under a single survey root.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .trace import Span, Tracer

if TYPE_CHECKING:  # import cycle: pipeline itself is instrumented
    from ..core.pipeline import SurveyReport

__all__ = [
    "COORDINATOR_STAGES",
    "SURVEY_STAGES",
    "audit_trace",
    "reconcile_survey",
]


def _counter(delta: dict, name: str) -> float:
    return delta.get("counters", {}).get(name, 0.0)


def reconcile_survey(
    report: SurveyReport, delta: dict | None = None
) -> list[str]:
    """Cross-check a survey's report counters against its metrics delta.

    Returns one human-readable line per mismatch; an empty list means
    every pair of books agrees exactly.  ``delta`` defaults to the
    delta the survey recorded on the report itself.
    """
    delta = report.metrics if delta is None else delta
    if not delta:
        return ["no metrics delta recorded on the report"]
    mismatches: list[str] = []

    def check(metric: str, reported: float, label: str) -> None:
        measured = _counter(delta, metric)
        if measured != reported:
            mismatches.append(
                f"{label}: report says {reported}, "
                f"metric {metric} says {measured}"
            )

    check(
        "survey.locations.completed",
        report.completed_locations,
        "completed locations",
    )
    check(
        "survey.locations.failed",
        len(report.failed_locations),
        "failed locations",
    )
    check(
        "survey.images.classified",
        report.images_classified,
        "images classified",
    )
    check("survey.votes.degraded", report.degraded_votes, "degraded votes")
    check("survey.votes.skipped", report.skipped_votes, "skipped votes")
    stats = report.retry_stats
    check("retry.operations", stats.operations, "retry operations")
    check("retry.attempts", stats.attempts, "retry attempts")
    check("retry.retries", stats.retries, "retries")
    check("retry.failures", stats.failures, "retry failures")
    check("retry.breaker_blocks", stats.breaker_blocks, "breaker blocks")
    if report.coalesce_stats:
        check(
            "llm.cache.hits",
            report.coalesce_stats.get("cache_hits", 0),
            "cache hits",
        )
        check(
            "llm.cache.coalesced",
            report.coalesce_stats.get("coalesced", 0),
            "coalesced requests",
        )
    if report.cascade_stats:
        cascade = report.cascade_stats
        check(
            "cascade.images",
            cascade.get("images", 0),
            "cascade images",
        )
        for tier in (0, 1, 2):
            check(
                f"cascade.tier{tier}.indicators",
                cascade.get(f"tier{tier}_indicators", 0),
                f"cascade tier-{tier} indicators",
            )
        check(
            "cascade.fallbacks",
            cascade.get("detector_fallbacks", 0),
            "cascade detector fallbacks",
        )
    return mismatches


#: Stage names a traced survey must exhibit somewhere in its tree.
SURVEY_STAGES = ("survey", "survey.location", "survey.classify",
                 "survey.vote", "survey.merge")

#: Stage names a traced *coordinated* survey must exhibit.  The
#: per-location survey stages live in worker processes (their tracers
#: die with them); the coordinator's own tree records the shard-level
#: lifecycle instead.
COORDINATOR_STAGES = ("coordinate", "coordinate.shard", "coordinate.merge")

#: Stage names a service-daemon job's span tree must exhibit: the
#: daemon's own ``service.job`` root wrapping the survey tree (each
#: job runs under its own tracer, so the engine's stages nest inside
#: the job span instead of standing alone).  ``survey.vote`` is
#: excluded — vote spans come from the ensemble, and service jobs run
#: the single-classifier or cascade profiles.
SERVICE_STAGES = ("service.job", "survey", "survey.location",
                  "survey.classify", "survey.merge")


def audit_trace(
    tracer: Tracer,
    required_names: tuple[str, ...] = SURVEY_STAGES,
) -> list[str]:
    """Structural validation of a recorded trace.

    Checks that span ids are unique, every ``parent_id`` resolves to a
    recorded span, exactly one root carries the first required name,
    and every required stage name occurs at least once.  Returns the
    problems found (empty list = structurally sound).
    """
    spans: list[Span] = tracer.spans
    problems: list[str] = []
    by_id: dict[str, Span] = {}
    for span in spans:
        if span.span_id in by_id:
            problems.append(f"duplicate span id {span.span_id}")
        by_id[span.span_id] = span
    for span in spans:
        if span.parent_id is not None and span.parent_id not in by_id:
            problems.append(
                f"span {span.span_id} ({span.name}) has unknown parent "
                f"{span.parent_id}"
            )
    names = {span.name for span in spans}
    for required in required_names:
        if required not in names:
            problems.append(f"missing stage span: {required}")
    roots = [
        span
        for span in spans
        if span.parent_id is None and span.name == required_names[0]
    ]
    if required_names and len(roots) != 1:
        problems.append(
            f"expected exactly one {required_names[0]!r} root, "
            f"found {len(roots)}"
        )
    return problems
