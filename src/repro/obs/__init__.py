"""Structured observability: tracing, metrics, and determinism audits.

The measurement substrate under the survey pipeline (DESIGN.md §11):

* :mod:`repro.obs.trace` — :class:`Span`/:class:`Tracer` with ids,
  parent links, and monotonic timings; JSONL export; a zero-cost
  :data:`NULL_TRACER` default.
* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket histograms) whose child-process
  deltas merge back through the
  :class:`~repro.parallel.executor.ParallelExecutor` result path.
* :mod:`repro.obs.audit` — cross-checks the metrics books against the
  survey report's counters and validates trace structure.

Instrumented code pays almost nothing by default: the tracer is a
no-op until installed (``repro trace ...`` or :func:`use_tracer`) and
metric increments are single locked dict updates.
"""

from .audit import (
    COORDINATOR_STAGES,
    SERVICE_STAGES,
    SURVEY_STAGES,
    audit_trace,
    reconcile_survey,
)
from .metrics import (
    DEFAULT_BUCKET_EDGES,
    MetricsRegistry,
    get_metrics,
    reset_metrics,
    use_metrics,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "COORDINATOR_STAGES",
    "SERVICE_STAGES",
    "DEFAULT_BUCKET_EDGES",
    "MetricsRegistry",
    "SURVEY_STAGES",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "audit_trace",
    "get_metrics",
    "get_tracer",
    "reconcile_survey",
    "reset_metrics",
    "set_tracer",
    "use_metrics",
    "use_tracer",
]
