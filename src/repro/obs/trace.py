"""Spans and tracers: where a survey's wall-clock actually goes.

A :class:`Span` is one timed operation (a GSV fetch, an LLM classify,
a merge step) with a stable id, an optional parent link, and free-form
JSON-able attributes.  A :class:`Tracer` hands out spans as context
managers and records them as they finish; :meth:`Tracer.export_jsonl`
writes one JSON object per line so a trace is greppable and streams
into any tooling.

Parenting is implicit within a thread: the innermost open span is
tracked in a :class:`contextvars.ContextVar`, so library code opening
``tracer.span("gsv.fetch")`` deep inside a worker automatically nests
under the per-location span its caller opened on the same thread.
Cross-thread edges (the survey root → its fan-out locations) pass
``parent=`` explicitly.

The default tracer is :data:`NULL_TRACER`, whose ``span()`` returns a
shared no-op handle — no allocation, no clock reads, no lock — so
instrumented hot paths cost nearly nothing until someone actually
turns tracing on (``repro trace ...`` or :func:`use_tracer`).

Timing uses ``time.perf_counter`` (monotonic); span ids are a
per-tracer counter, so two identical runs produce structurally
identical traces apart from the recorded durations.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]

#: Innermost open span on the current thread (implicit parent).
_current_span: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class Span:
    """One timed, attributed operation within a trace."""

    __slots__ = (
        "name",
        "span_id",
        "trace_id",
        "parent_id",
        "start_s",
        "end_s",
        "attributes",
        "status",
        "error",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        trace_id: str,
        parent_id: str | None,
        attributes: dict,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.start_s = time.perf_counter()
        self.end_s: float | None = None
        self.attributes = attributes
        self.status = "ok"
        self.error: str | None = None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, **attributes) -> "Span":
        """Attach attributes after the span opened; returns self."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> dict:
        payload = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": round(self.start_s, 9),
            "duration_s": round(self.duration_s, 9),
            "status": self.status,
            "attributes": self.attributes,
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.duration_s * 1e3:.2f}ms)"
        )


class Tracer:
    """Recording tracer: hands out spans, keeps every finished one.

    Thread-safe — the survey opens spans from the merge thread and
    every worker concurrently.  Spans are recorded in *finish* order;
    each carries its start time, so consumers can re-sort.
    """

    def __init__(self, trace_id: str = "trace") -> None:
        self.trace_id = trace_id
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._ids = itertools.count(1)

    @property
    def enabled(self) -> bool:
        return True

    @property
    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    @contextmanager
    def span(self, name: str, parent: "Span | None" = None, **attributes):
        """Open a span; closes (and records) when the block exits.

        ``parent`` overrides the implicit current-thread parent —
        required when the child runs on a different thread than the
        span it belongs under.
        """
        if parent is None:
            parent = _current_span.get()
        parent_id = parent.span_id if isinstance(parent, Span) else None
        span = Span(
            name=name,
            span_id=f"s{next(self._ids):06d}",
            trace_id=self.trace_id,
            parent_id=parent_id,
            attributes=attributes,
        )
        token = _current_span.set(span)
        try:
            yield span
        except BaseException as err:
            span.status = "error"
            span.error = f"{type(err).__name__}: {err}"
            raise
        finally:
            span.end_s = time.perf_counter()
            _current_span.reset(token)
            with self._lock:
                self._spans.append(span)

    # ------------------------------------------------------------------
    # export

    def to_jsonl(self) -> str:
        """Every recorded span, one sorted-key JSON object per line."""
        with self._lock:
            spans = list(self._spans)
        return "".join(
            json.dumps(span.to_dict(), sort_keys=True) + "\n"
            for span in spans
        )

    def export_jsonl(self, path: str | Path) -> int:
        """Write the trace to ``path``; returns the span count."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = self.to_jsonl()
        path.write_text(text, encoding="utf-8")
        return text.count("\n")

    def span_tree(self) -> dict[str | None, list[Span]]:
        """Spans grouped by parent id (``None`` groups the roots)."""
        tree: dict[str | None, list[Span]] = {}
        for span in self.spans:
            tree.setdefault(span.parent_id, []).append(span)
        return tree


class _NullSpan(Span):
    """The span nobody records: every mutator is a no-op."""

    def __init__(self) -> None:
        super().__init__(
            name="null", span_id="s0", trace_id="null", parent_id=None,
            attributes={},
        )

    def set(self, **attributes) -> "Span":
        return self


_NULL_SPAN = _NullSpan()


class _NullHandle:
    """Reusable no-op context manager yielding the null span."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_HANDLE = _NullHandle()


class NullTracer:
    """The default tracer: free to call, records nothing."""

    trace_id = "null"

    @property
    def enabled(self) -> bool:
        return False

    @property
    def spans(self) -> list[Span]:
        return []

    def span(self, name: str, parent: Span | None = None, **attributes):
        return _NULL_HANDLE

    def to_jsonl(self) -> str:
        return ""

    def export_jsonl(self, path: str | Path) -> int:
        Path(path).write_text("", encoding="utf-8")
        return 0

    def span_tree(self) -> dict[str | None, list[Span]]:
        return {}


#: Shared no-op tracer; also the process-wide default.
NULL_TRACER = NullTracer()
_active: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The currently active tracer (:data:`NULL_TRACER` by default)."""
    return _active


def set_tracer(tracer: Tracer | NullTracer | None) -> None:
    """Install the process-wide tracer (``None`` restores the no-op)."""
    global _active
    _active = tracer if tracer is not None else NULL_TRACER


@contextmanager
def use_tracer(tracer: Tracer | NullTracer):
    """Temporarily install ``tracer`` as the process-wide default."""
    global _active
    previous = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = previous
