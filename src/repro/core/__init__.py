"""Core contribution: LLM-based neighborhood environment decoding."""

from .classifier import (
    ClassificationError,
    ClassificationOutcome,
    ClassifierConfig,
    LLMIndicatorClassifier,
)
from .fewshot import (
    EXAMPLE_MARKERS,
    build_few_shot_messages,
    build_few_shot_request,
    count_exemplars,
)
from .indicators import (
    ALL_INDICATORS,
    Indicator,
    IndicatorPresence,
    PAPER_OBJECT_COUNTS,
)
from .languages import (
    CONJUNCTIONS,
    FORMAT_HEADERS,
    PAPER_QUESTION_ORDER,
    QUESTIONS,
    SEQUENTIAL_CLAUSES,
    SEQUENTIAL_LEADS,
)
from .metrics import (
    ClassificationReport,
    ConfusionAccumulator,
    ConfusionCounts,
    PresenceAccumulator,
    accuracy_by_indicator,
)
from .parsing import (
    ParsedAnswers,
    ResponseParseError,
    answers_to_presence,
    extract_decisions,
    parse_answers,
    presence_to_answer_text,
)
from .pipeline import (
    FailedLocation,
    LocationResult,
    NeighborhoodDecoder,
    SurveyReport,
)
from .prompts import (
    PromptStyle,
    build_parallel_prompt,
    build_sequential_prompt,
    build_single_prompt,
    prompt_for_style,
)
from .voting import (
    VoteRecord,
    VotingEnsemble,
    agreement_rate,
    majority_vote,
    vote_predictions,
)

__all__ = [
    "EXAMPLE_MARKERS",
    "build_few_shot_messages",
    "build_few_shot_request",
    "count_exemplars",
    "ClassificationError",
    "ClassificationOutcome",
    "ClassifierConfig",
    "LLMIndicatorClassifier",
    "ALL_INDICATORS",
    "Indicator",
    "IndicatorPresence",
    "PAPER_OBJECT_COUNTS",
    "CONJUNCTIONS",
    "FORMAT_HEADERS",
    "PAPER_QUESTION_ORDER",
    "QUESTIONS",
    "SEQUENTIAL_CLAUSES",
    "SEQUENTIAL_LEADS",
    "ClassificationReport",
    "ConfusionAccumulator",
    "ConfusionCounts",
    "PresenceAccumulator",
    "accuracy_by_indicator",
    "ParsedAnswers",
    "ResponseParseError",
    "answers_to_presence",
    "extract_decisions",
    "parse_answers",
    "presence_to_answer_text",
    "FailedLocation",
    "LocationResult",
    "NeighborhoodDecoder",
    "SurveyReport",
    "PromptStyle",
    "build_parallel_prompt",
    "build_sequential_prompt",
    "build_single_prompt",
    "prompt_for_style",
    "VoteRecord",
    "VotingEnsemble",
    "agreement_rate",
    "majority_vote",
    "vote_predictions",
]
