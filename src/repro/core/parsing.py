"""Parsing model responses back into Yes/No decisions.

Real models never answer with a perfectly clean machine-readable
string; this parser tolerates the formatting the four simulated models
(and their real counterparts) produce: mixed case, trailing
punctuation, vendor prefixes, different separators, and the four
languages' Yes/No surface forms (Yes/No, Sí/No, 是/否, হ্যাঁ/না).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..llm.language import Language
from .indicators import ALL_INDICATORS, Indicator, IndicatorPresence


class ResponseParseError(ValueError):
    """The model's response could not be mapped to Yes/No answers."""


#: Affirmative and negative tokens per language (lowercased, accent
#: variants included).
_YES_TOKENS = {
    "yes", "y", "sí", "si", "是", "是的", "हाँ", "হ্যাঁ", "হ্যা", "true",
}
_NO_TOKENS = {"no", "n", "否", "不是", "না", "false"}

#: Separators between successive answers.
_SEPARATORS = re.compile(r"[,，、;；/\s]+")

#: Characters stripped from candidate tokens.
_STRIP = ".!?。！？'\"`“”‘’()[]{}:"


@dataclass(frozen=True)
class ParsedAnswers:
    """Decoded answers plus bookkeeping for diagnostics."""

    answers: tuple[bool, ...]
    raw: str

    def __len__(self) -> int:
        return len(self.answers)


def extract_decisions(text: str) -> list[bool]:
    """All Yes/No decisions found in a response, in order."""
    decisions = []
    for token in _SEPARATORS.split(text):
        cleaned = token.strip(_STRIP).lower()
        if not cleaned:
            continue
        if cleaned in _YES_TOKENS:
            decisions.append(True)
        elif cleaned in _NO_TOKENS:
            decisions.append(False)
        else:
            # CJK answers may arrive unseparated ("是否是…" never occurs
            # in answers, but "是，否" with full-width separators does;
            # handle glued single-char sequences).
            for char in cleaned:
                if char == "是":
                    decisions.append(True)
                elif char == "否":
                    decisions.append(False)
    return decisions


def parse_answers(
    text: str,
    expected: int,
    language: Language = Language.ENGLISH,
) -> ParsedAnswers:
    """Parse a response expected to contain ``expected`` decisions.

    Raises :class:`ResponseParseError` when the count does not match —
    the classifier uses this to trigger a reformat-and-retry round
    trip, just as one must against the real APIs.
    """
    if expected <= 0:
        raise ValueError(f"expected must be positive: {expected}")
    decisions = extract_decisions(text)
    if len(decisions) != expected:
        raise ResponseParseError(
            f"expected {expected} Yes/No answers, found {len(decisions)} "
            f"in {text!r}"
        )
    return ParsedAnswers(answers=tuple(decisions), raw=text)


def answers_to_presence(
    answers: ParsedAnswers | tuple[bool, ...],
    indicators: tuple[Indicator, ...],
) -> IndicatorPresence:
    """Map ordered answers onto their indicators.

    Indicators outside ``indicators`` are treated as absent.
    """
    values = (
        answers.answers if isinstance(answers, ParsedAnswers) else answers
    )
    if len(values) != len(indicators):
        raise ValueError(
            f"{len(values)} answers for {len(indicators)} indicators"
        )
    present = [
        indicator
        for indicator, answer in zip(indicators, values)
        if answer
    ]
    return IndicatorPresence(present)


def presence_to_answer_text(
    presence: IndicatorPresence,
    indicators: tuple[Indicator, ...] = ALL_INDICATORS,
    language: Language = Language.ENGLISH,
) -> str:
    """Render a presence record as the canonical answer string."""
    from ..llm.language import NO_WORDS, YES_WORDS

    yes, no = YES_WORDS[language], NO_WORDS[language]
    return ", ".join(
        yes if presence[indicator] else no for indicator in indicators
    )
