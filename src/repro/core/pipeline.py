"""End-to-end neighborhood decoding: the system a user would deploy.

``NeighborhoodDecoder`` wires the whole paper together: sample
locations from a county's road network, fetch street-view imagery,
classify every capture with an LLM (or a majority-voting ensemble),
and aggregate per-location results into neighborhood-level indicator
statistics — the kind of output public-health studies correlate with
obesity/diabetes prevalence in the work the paper builds on.

The survey path is fault tolerant: street-view fetches run under the
shared :class:`~repro.resilience.retry.RetryPolicy` (optionally behind
a :class:`~repro.resilience.breaker.CircuitBreaker`), ensemble voting
degrades to the surviving quorum when a member is down, a failed
location is recorded and skipped instead of aborting the survey, and
per-location progress can be checkpointed to disk so a rerun resumes
after the last completed location without re-billing fetched imagery.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # cascade imports core; keep the runtime edge one-way
    from ..cascade.router import CascadeClassifier

from ..gsv.api import (
    StreetViewClient,
    StreetViewError,
    TransientNetworkError,
)
from ..gsv.dataset import LabeledImage
from ..geo.county import County
from ..geo.sampling import (
    SamplePoint,
    expand_to_captures,
    plan_survey_points,
)
from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from ..parallel.aio import (
    AIMDController,
    MicroBatcher,
    ThreadBridge,
    imap_async,
)
from ..parallel.executor import ParallelExecutor, TaskOutcome
from ..resilience.breaker import CircuitBreaker, CircuitOpenError
from ..resilience.checkpoint import SurveyCheckpoint
from ..resilience.clock import Clock, WallClock
from ..resilience.retry import RetryPolicy, RetryStats
from .classifier import ClassificationError, LLMIndicatorClassifier
from .indicators import ALL_INDICATORS, Indicator, IndicatorPresence
from .metrics import PresenceAccumulator
from .voting import VotingEnsemble

#: Default bounded-shard width for :meth:`NeighborhoodDecoder.survey_stream`.
DEFAULT_SHARD_SIZE = 64


@dataclass
class LocationResult:
    """Decoded indicators at one survey location (4 headings)."""

    latitude: float
    longitude: float
    county: str
    zone_kind: str
    presence: IndicatorPresence  # union over the four headings


@dataclass(frozen=True)
class FailedLocation:
    """A survey location that could not be completed."""

    index: int
    latitude: float
    longitude: float
    reason: str


@dataclass
class SurveyReport:
    """Aggregated neighborhood survey output.

    Partial results are first-class: ``coverage`` is the fraction of
    requested locations completed, ``failed_locations`` names the
    rest, ``degraded_votes`` counts images voted on a reduced quorum,
    and ``retry_stats`` totals the fault handling performed.

    A streaming survey in aggregate mode (``keep_locations=False``)
    leaves ``locations`` empty and carries the same statistics in
    ``presence_stats`` / ``zone_stats`` instead — O(1) memory per
    indicator rather than O(locations).  ``completed_locations``
    counts completions in both modes.  ``coalesce_stats`` reports
    request coalescing for observability but is deliberately *not*
    part of :meth:`payload`: whether identical in-flight requests
    shared an upstream call must never change what the survey decoded.
    ``metrics`` — the observability counters this survey moved (see
    :mod:`repro.obs.metrics`) — is excluded for the same reason, and so
    that :func:`repro.obs.audit.reconcile_survey` stays an *independent*
    second set of books rather than part of the payload it audits.
    ``skipped_votes`` (ensemble member calls never issued because the
    vote was already decided) and ``cascade_stats`` (per-tier routing
    counters of a cascade-backed survey) are likewise observability,
    not decoded output, and stay out of the payload — a cascade at
    threshold 0 must serialize byte-identically to a plain ensemble.
    ``batch_stats`` (micro-batch dispatch provenance of an async
    survey) and ``pipeline_stats`` (its AIMD window summary) follow
    the same rule: how classify calls were grouped or throttled must
    never change what the survey decoded, so the async engine's
    payload stays byte-identical to the serial one.
    """

    locations: list[LocationResult] = field(default_factory=list)
    images_classified: int = 0
    fees_usd: float = 0.0
    requested_locations: int = 0
    coverage: float = 1.0
    failed_locations: list[FailedLocation] = field(default_factory=list)
    degraded_votes: int = 0
    retry_stats: RetryStats = field(default_factory=RetryStats)
    completed_locations: int = 0
    presence_stats: PresenceAccumulator | None = None
    zone_stats: dict[str, PresenceAccumulator] | None = None
    coalesce_stats: dict[str, int] = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    skipped_votes: int = 0
    cascade_stats: dict[str, int] = field(default_factory=dict)
    batch_stats: dict[str, int] = field(default_factory=dict)
    pipeline_stats: dict[str, int] = field(default_factory=dict)

    def indicator_rates(self) -> dict[Indicator, float]:
        """Fraction of locations where each indicator was decoded."""
        if not self.locations:
            if self.presence_stats is not None and self.presence_stats.n:
                return self.presence_stats.rates()
            return {ind: float("nan") for ind in ALL_INDICATORS}
        return {
            ind: float(
                np.mean([loc.presence[ind] for loc in self.locations])
            )
            for ind in ALL_INDICATORS
        }

    def payload(self) -> dict:
        """Canonical JSON-ready dict of the full report.

        The representation is deliberately exhaustive and ordered so
        that two runs of the same survey — serial or parallel — can be
        compared byte-for-byte via :meth:`to_json`.
        """
        return {
            "requested_locations": self.requested_locations,
            "coverage": self.coverage,
            "images_classified": self.images_classified,
            "fees_usd": round(self.fees_usd, 9),
            "degraded_votes": self.degraded_votes,
            "locations": [
                {
                    "latitude": loc.latitude,
                    "longitude": loc.longitude,
                    "county": loc.county,
                    "zone_kind": loc.zone_kind,
                    "present": sorted(ind.value for ind in loc.presence.present),
                }
                for loc in self.locations
            ],
            "failed_locations": [
                {
                    "index": failed.index,
                    "latitude": failed.latitude,
                    "longitude": failed.longitude,
                    "reason": failed.reason,
                }
                for failed in self.failed_locations
            ],
            "retry_stats": self.retry_stats.as_dict(),
        }

    def to_json(self) -> str:
        """Deterministic JSON serialization of :meth:`payload`."""
        return json.dumps(self.payload(), sort_keys=True)

    def rates_by_zone(self) -> dict[str, dict[Indicator, float]]:
        """Indicator rates broken out by land-use zone."""
        if not self.locations and self.zone_stats is not None:
            return {
                zone: acc.rates()
                for zone, acc in sorted(self.zone_stats.items())
            }
        zones: dict[str, list[LocationResult]] = {}
        for location in self.locations:
            zones.setdefault(location.zone_kind, []).append(location)
        return {
            zone: {
                ind: float(
                    np.mean([loc.presence[ind] for loc in group])
                )
                for ind in ALL_INDICATORS
            }
            for zone, group in sorted(zones.items())
        }


@dataclass
class NeighborhoodDecoder:
    """Survey a county with a classifier, voting ensemble, or cascade.

    Exactly one of ``classifier`` / ``ensemble`` / ``cascade`` must be
    provided.  ``retry_policy`` governs street-view fetches
    (classifier retry is configured on the classifiers themselves);
    ``gsv_breaker`` short-circuits a hard-down imagery endpoint.
    """

    street_view: StreetViewClient
    classifier: LLMIndicatorClassifier | None = None
    ensemble: VotingEnsemble | None = None
    cascade: CascadeClassifier | None = None
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    gsv_breaker: CircuitBreaker | None = None
    clock: Clock = field(default_factory=WallClock)
    #: Rasterize during the fetch instead of deferring pixels.  The
    #: survey itself never needs eager pixels (the classifier renders
    #: on demand), but a traced run sets this so ``gsv.render`` spans
    #: land inside their ``gsv.fetch`` parents.
    render_pixels: bool = False

    def __post_init__(self) -> None:
        backends = [self.classifier, self.ensemble, self.cascade]
        if sum(backend is not None for backend in backends) != 1:
            raise ValueError(
                "provide exactly one of classifier, ensemble, or cascade"
            )

    # ------------------------------------------------------------------

    def survey(
        self,
        county: County,
        n_locations: int,
        seed: int = 0,
        checkpoint: str | Path | None = None,
        workers: int | None = 1,
    ) -> SurveyReport:
        """Decode ``n_locations`` random roadway locations in a county.

        A failed location (exhausted retries, quota, open circuit, all
        ensemble members down) is recorded in ``failed_locations`` and
        the survey continues.  With ``checkpoint`` set, completed
        locations persist to disk and a rerun with the same arguments
        resumes after them — already-billed imagery is never refetched.

        ``workers`` fans per-location fetch+classify work across a
        thread pool (``None``/``0`` → ``os.cpu_count()``).  Results
        merge in submission order and checkpoint writes stay on the
        calling thread, so for a fault-free run the report is
        byte-identical to the serial one (see DESIGN.md §8).
        """
        report = SurveyReport(requested_locations=max(n_locations, 0))
        if n_locations <= 0:
            report.coverage = 0.0
            return report
        points = self._select_points(county, n_locations, seed)
        if points is None:
            report.coverage = 0.0
            return report
        store = self._open_checkpoint(checkpoint, county, n_locations, seed)
        self._decode_points(
            points,
            report,
            store=store,
            workers=workers,
            max_in_flight=None,
            keep_locations=True,
        )
        report.coverage = report.completed_locations / n_locations
        return report

    def survey_stream(
        self,
        county: County | None = None,
        n_locations: int | None = None,
        *,
        locations: Iterable[SamplePoint] | None = None,
        seed: int = 0,
        shard_size: int = DEFAULT_SHARD_SIZE,
        workers: int | None = 1,
        checkpoint: str | Path | None = None,
        checkpoint_store: SurveyCheckpoint | None = None,
        keep_locations: bool = False,
    ) -> SurveyReport:
        """Memory-bounded :meth:`survey` over a location *stream*.

        Accepts either ``(county, n_locations)`` — the same sampling
        as :meth:`survey`, point for point — or ``locations=``, any
        iterable of :class:`~repro.geo.sampling.SamplePoint` (a
        generator over a county→state sweep never materializes).  At
        most ``shard_size`` locations are in flight at once, so peak
        memory is O(shard_size) regardless of stream length.

        With the default ``keep_locations=False`` the report carries
        aggregate statistics only (``presence_stats`` /
        ``zone_stats``): ``indicator_rates()`` and ``rates_by_zone()``
        return *exactly* the values the batch path computes — the
        accumulators reduce to the same integer-sum-over-n division —
        while memory stays flat.  With ``keep_locations=True`` the
        report retains every :class:`LocationResult` and its
        :meth:`SurveyReport.to_json` is byte-identical to the batch
        report for the same county/seed.

        ``checkpoint`` requires county mode (an arbitrary iterable has
        no stable identity to key resumption on) and shares its key
        with :meth:`survey`, so a batch run can resume as a stream and
        vice versa.  A caller that *does* own a stable identity for
        its stream — the shard coordinator, whose manifest fingerprint
        names each shard's points exactly — passes an already-opened
        ``checkpoint_store`` instead; the two arguments are mutually
        exclusive.
        """
        county_mode = county is not None or n_locations is not None
        if county_mode == (locations is not None):
            raise ValueError(
                "provide either (county, n_locations) or locations=..."
            )
        if checkpoint is not None and checkpoint_store is not None:
            raise ValueError(
                "provide at most one of checkpoint / checkpoint_store"
            )
        if shard_size < 1:
            raise ValueError(f"shard_size must be positive: {shard_size}")
        report = SurveyReport()
        if not keep_locations:
            report.presence_stats = PresenceAccumulator()
            report.zone_stats = {}

        store: SurveyCheckpoint | None = checkpoint_store
        if county_mode:
            assert county is not None and n_locations is not None
            report.requested_locations = max(n_locations, 0)
            if n_locations <= 0:
                report.coverage = 0.0
                return report
            points = self._select_points(county, n_locations, seed)
            if points is None:
                report.coverage = 0.0
                return report
            if store is None:
                store = self._open_checkpoint(
                    checkpoint, county, n_locations, seed
                )
            stream: Iterable[SamplePoint] = points
        else:
            if checkpoint is not None:
                raise ValueError(
                    "checkpointing a location iterable is not supported: "
                    "an arbitrary stream has no stable identity to key "
                    "resumption on — use (county, n_locations) mode, or "
                    "pass checkpoint_store= if the caller owns a stable "
                    "identity for the stream"
                )
            stream = locations  # type: ignore[assignment]

        requested = self._decode_points(
            stream,
            report,
            store=store,
            workers=workers,
            max_in_flight=shard_size,
            keep_locations=keep_locations,
        )
        if not county_mode:
            report.requested_locations = requested
        if report.requested_locations:
            report.coverage = (
                report.completed_locations / report.requested_locations
            )
        else:
            report.coverage = 0.0
        return report

    # ------------------------------------------------------------------

    async def survey_async(
        self,
        county: County,
        n_locations: int,
        seed: int = 0,
        checkpoint: str | Path | None = None,
        max_inflight: int = 1,
        microbatch: bool | None = None,
        checkpoint_store: SurveyCheckpoint | None = None,
        bridge: ThreadBridge | None = None,
    ) -> SurveyReport:
        """Pipelined :meth:`survey` on the running event loop.

        Same sampling, same checkpoint key, same report — byte-identical
        to the serial engine for the same arguments (DESIGN.md §15).
        Each location flows through fetch → classify stages gated
        separately, so imagery acquisition for upcoming locations
        overlaps LLM calls for earlier ones; ``max_inflight`` bounds
        the pipelined window (1 keeps it strictly sequential).  The
        classify stage runs under an AIMD window that narrows on
        observed rate limiting and recovers additively
        (``report.pipeline_stats``); with ``microbatch`` (default: on
        whenever the window allows ≥ 2 concurrent locations),
        compatible classify calls dispatch as single batched windows
        (``report.batch_stats``).

        A caller that owns the survey's identity may pass an opened
        ``checkpoint_store`` instead of a ``checkpoint`` path (mutually
        exclusive, mirroring :meth:`survey_stream`); the service daemon
        uses this to observe per-location progress through the store's
        ``record`` calls.  ``bridge`` lends a caller-owned
        :class:`~repro.parallel.aio.ThreadBridge` (left open on return)
        so a long-lived host multiplexing many surveys does not pay a
        thread-pool spin-up per run.
        """
        if checkpoint is not None and checkpoint_store is not None:
            raise ValueError(
                "provide at most one of checkpoint / checkpoint_store"
            )
        report = SurveyReport(requested_locations=max(n_locations, 0))
        if n_locations <= 0:
            report.coverage = 0.0
            return report
        points = self._select_points(county, n_locations, seed)
        if points is None:
            report.coverage = 0.0
            return report
        store = checkpoint_store
        if store is None:
            store = self._open_checkpoint(
                checkpoint, county, n_locations, seed
            )
        await self._decode_points_async(
            points,
            report,
            store=store,
            max_inflight=max_inflight,
            keep_locations=True,
            microbatch=microbatch,
            bridge=bridge,
        )
        report.coverage = report.completed_locations / n_locations
        return report

    async def survey_stream_async(
        self,
        county: County | None = None,
        n_locations: int | None = None,
        *,
        locations: Iterable[SamplePoint] | None = None,
        seed: int = 0,
        max_inflight: int = DEFAULT_SHARD_SIZE,
        checkpoint: str | Path | None = None,
        checkpoint_store: SurveyCheckpoint | None = None,
        keep_locations: bool = False,
        microbatch: bool | None = None,
        bridge: ThreadBridge | None = None,
    ) -> SurveyReport:
        """Async :meth:`survey_stream`: bounded-memory pipelined decode.

        Accepts the same ``(county, n_locations)`` / ``locations=``
        duality; ``max_inflight`` plays the role ``shard_size`` plays
        in the sync stream — it bounds both the pipelined window and
        the memory footprint.  Aggregate mode
        (``keep_locations=False``) carries ``presence_stats`` /
        ``zone_stats`` exactly like the sync stream.

        ``checkpoint_store`` / ``bridge`` follow :meth:`survey_async`:
        an already-opened checkpoint (for callers that own the stream's
        identity, like the shard coordinator and the service daemon)
        and a caller-owned thread bridge that is left open on return.
        """
        county_mode = county is not None or n_locations is not None
        if county_mode == (locations is not None):
            raise ValueError(
                "provide either (county, n_locations) or locations=..."
            )
        if checkpoint is not None and checkpoint_store is not None:
            raise ValueError(
                "provide at most one of checkpoint / checkpoint_store"
            )
        report = SurveyReport()
        if not keep_locations:
            report.presence_stats = PresenceAccumulator()
            report.zone_stats = {}

        store: SurveyCheckpoint | None = checkpoint_store
        if county_mode:
            assert county is not None and n_locations is not None
            report.requested_locations = max(n_locations, 0)
            if n_locations <= 0:
                report.coverage = 0.0
                return report
            points = self._select_points(county, n_locations, seed)
            if points is None:
                report.coverage = 0.0
                return report
            if store is None:
                store = self._open_checkpoint(
                    checkpoint, county, n_locations, seed
                )
            stream: Iterable[SamplePoint] = points
        else:
            if checkpoint is not None:
                raise ValueError(
                    "checkpointing a location iterable is not supported: "
                    "an arbitrary stream has no stable identity to key "
                    "resumption on — use (county, n_locations) mode, or "
                    "pass checkpoint_store= if the caller owns a stable "
                    "identity for the stream"
                )
            stream = locations  # type: ignore[assignment]

        requested = await self._decode_points_async(
            stream,
            report,
            store=store,
            max_inflight=max_inflight,
            keep_locations=keep_locations,
            microbatch=microbatch,
            bridge=bridge,
        )
        if not county_mode:
            report.requested_locations = requested
        if report.requested_locations:
            report.coverage = (
                report.completed_locations / report.requested_locations
            )
        else:
            report.coverage = 0.0
        return report

    async def _decode_points_async(
        self,
        points: Iterable[SamplePoint],
        report: SurveyReport,
        *,
        store: SurveyCheckpoint | None,
        max_inflight: int,
        keep_locations: bool,
        microbatch: bool | None = None,
        controller: AIMDController | None = None,
        bridge: ThreadBridge | None = None,
    ) -> int:
        """The async twin of :meth:`_decode_points`.

        Each location is a coroutine pipelined through two gated
        stages: fetch(+render) behind a semaphore sized to the window,
        then classify(+vote) behind the AIMD controller's slot.  Both
        stages execute the *unchanged* sync helpers on a capped
        :class:`~repro.parallel.aio.ThreadBridge`, so client APIs and
        retry/breaker semantics are untouched.  Merging happens on the
        event loop, strictly in submission order, through the same
        :meth:`_merge_one` body as the sync engines — the ordering
        discipline that keeps the report byte-identical.

        The merge loop doubles as the congestion observer: after each
        merge it reads the deltas of ``retry.rate_limited`` and
        ``llm.throttle_wait_seconds`` and feeds the controller, which
        narrows the classify window multiplicatively under throttle
        storms and re-widens additively when the path is clear.
        """
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be positive: {max_inflight}"
            )
        tracer = get_tracer()
        registry = get_metrics()
        metrics_before = registry.snapshot()
        classifiers = self._classifiers()
        baselines, coalesce_before, cascade_before, fees_before = (
            self._survey_baselines(classifiers)
        )
        # Per-location retry provenance needs locations one at a time,
        # exactly as in the sync engine's serial backend.
        record_provenance = max_inflight == 1
        if controller is None:
            controller = AIMDController(
                initial=max_inflight, max_limit=max_inflight
            )
        if microbatch is None:
            microbatch = max_inflight > 1
        batcher = (
            MicroBatcher(max_batch=min(8, max_inflight)) if microbatch else None
        )
        fetch_gate = asyncio.Semaphore(max_inflight)
        # Each in-flight location can park at most one sync call on the
        # bridge at a time (fetch or classify), so the window itself is
        # the right thread cap; the floor keeps a serial pipeline from
        # strangling the batcher's leader waits.  A caller-owned bridge
        # (the service daemon reusing one pool across jobs) is used as
        # handed over and must be sized to its own widest window.
        owned_bridge = bridge is None
        if bridge is None:
            bridge = ThreadBridge(max_threads=max(2, max_inflight))

        window: dict[int, SamplePoint] = {}
        drawn = 0

        def tracked() -> Iterator[tuple[int, SamplePoint]]:
            nonlocal drawn
            for index, point in enumerate(points):
                window[index] = point
                drawn += 1
                yield index, point

        def throttle_level() -> float:
            return registry.counter("retry.rate_limited") + registry.counter(
                "llm.throttle_wait_seconds"
            )

        with contextlib.ExitStack() as stack:
            if owned_bridge:
                stack.enter_context(bridge)
            root_span = stack.enter_context(
                tracer.span("survey", workers=max_inflight, engine="async")
            )
            if batcher is not None:
                stack.enter_context(batcher.install(classifiers))

            async def decode_one(
                indexed: tuple[int, SamplePoint]
            ) -> (
                tuple[LocationResult, int, int, int, RetryStats, dict | None]
                | dict
            ):
                index, point = indexed
                with tracer.span(
                    "survey.location", parent=root_span, index=index
                ) as loc_span:
                    if store is not None and store.has(index):
                        loc_span.set(checkpointed=True)
                        return store.get(index)
                    fetch_stats = RetryStats()
                    clf_before = (
                        [replace(clf.retry_stats) for clf in classifiers]
                        if record_provenance
                        else None
                    )
                    try:
                        async with fetch_gate:
                            images = await bridge.run(
                                self._fetch_location,
                                index,
                                point,
                                fetch_stats,
                            )
                        async with controller.slot():
                            with tracer.span(
                                "survey.classify",
                                parent=loc_span,
                                images=len(images),
                            ):
                                presences, degraded, skipped = (
                                    await bridge.run(
                                        self._predict_location, images
                                    )
                                )
                    except (
                        StreetViewError,
                        CircuitOpenError,
                        ClassificationError,
                    ) as err:
                        err.retry_provenance = fetch_stats  # type: ignore[attr-defined]
                        raise
                    return self._package_result(
                        point,
                        images,
                        presences,
                        degraded,
                        skipped,
                        fetch_stats,
                        clf_before,
                        classifiers,
                    )

            throttle_base = throttle_level()
            async for task in imap_async(
                decode_one, tracked(), max_inflight=max_inflight
            ):
                point = window.pop(task.index)
                self._merge_one(
                    task,
                    point,
                    report,
                    store=store,
                    keep_locations=keep_locations,
                    tracer=tracer,
                    root_span=root_span,
                )
                throttle_now = throttle_level()
                if throttle_now > throttle_base:
                    controller.on_throttle()
                else:
                    controller.on_success()
                throttle_base = throttle_now

            self._finalize_report(
                report,
                baselines,
                coalesce_before,
                cascade_before,
                fees_before,
            )
            if batcher is not None:
                report.batch_stats = batcher.stats()
            report.pipeline_stats = controller.stats()
        report.metrics = registry.delta_since(metrics_before)
        return drawn

    # ------------------------------------------------------------------

    @staticmethod
    def _select_points(
        county: County, n_locations: int, seed: int
    ) -> list[SamplePoint] | None:
        """The batch path's sampling, shared verbatim by both entries.

        Delegates to :func:`~repro.geo.sampling.plan_survey_points`,
        the same planner the shard coordinator uses for multi-county
        frames — one sampling code path, so a coordinated survey's
        frame is the survey's frame.
        """
        points = plan_survey_points([county], n_locations, seed)
        return points or None

    @staticmethod
    def _open_checkpoint(
        checkpoint: str | Path | None,
        county: County,
        n_locations: int,
        seed: int,
    ) -> SurveyCheckpoint | None:
        if checkpoint is None:
            return None
        return SurveyCheckpoint(
            checkpoint,
            key={
                "county": county.name,
                "n_locations": n_locations,
                "seed": seed,
            },
        )

    def _decode_points(
        self,
        points: Iterable[SamplePoint],
        report: SurveyReport,
        *,
        store: SurveyCheckpoint | None,
        workers: int | None,
        max_in_flight: int | None,
        keep_locations: bool,
    ) -> int:
        """Fan out fetch+classify over ``points``; returns points drawn.

        The shared core of :meth:`survey` and :meth:`survey_stream`.
        Merging and checkpoint writes happen on the calling thread,
        strictly in submission order — this is what keeps a parallel
        (or streamed) survey's report identical to a serial batch one.
        Only ``max_in_flight`` points are held at once: the in-flight
        window is the whole memory footprint of a streamed survey.
        """
        tracer = get_tracer()
        registry = get_metrics()
        metrics_before = registry.snapshot()
        classifiers = self._classifiers()
        baselines, coalesce_before, cascade_before, fees_before = (
            self._survey_baselines(classifiers)
        )
        executor = ParallelExecutor(
            workers=workers, max_in_flight=max_in_flight
        )
        # Per-location retry provenance (persisted into checkpoint
        # payloads so the coordinator can reconstruct canonical totals
        # after a crash) is only meaningful when locations run one at a
        # time: classifier stats are shared objects, so concurrent
        # locations interleave their deltas.
        record_provenance = executor.backend == "serial"

        # The executor consumes the stream lazily; this window maps the
        # indices of in-flight points back to their coordinates so a
        # failure can be recorded without retaining the whole stream.
        window: dict[int, SamplePoint] = {}
        drawn = 0

        def tracked() -> Iterator[tuple[int, SamplePoint]]:
            nonlocal drawn
            for index, point in enumerate(points):
                window[index] = point
                drawn += 1
                yield index, point

        with tracer.span("survey", workers=workers) as root_span:

            def decode_one(
                indexed: tuple[int, SamplePoint]
            ) -> (
                tuple[LocationResult, int, int, int, RetryStats, dict | None]
                | dict
            ):
                """Fetch+classify one location (runs on a worker thread).

                Checkpointed locations return their stored payload
                without touching the network; errors propagate to the
                consumer below, which records the failure in
                submission order.  Fetch retries accumulate in a
                *local* stats object merged by the consumer (also in
                submission order); on failure the local stats travel
                on the exception so the fault handling a doomed
                location performed still reaches the report.  The
                location span parents to the survey root *explicitly*
                — implicit (contextvar) parenting does not cross the
                worker-thread boundary.
                """
                index, point = indexed
                with tracer.span(
                    "survey.location", parent=root_span, index=index
                ) as loc_span:
                    if store is not None and store.has(index):
                        loc_span.set(checkpointed=True)
                        return store.get(index)
                    fetch_stats = RetryStats()
                    clf_before = (
                        [replace(clf.retry_stats) for clf in classifiers]
                        if record_provenance
                        else None
                    )
                    try:
                        images = self._fetch_location(
                            index, point, fetch_stats
                        )
                        with tracer.span(
                            "survey.classify", images=len(images)
                        ):
                            presences, degraded, skipped = (
                                self._predict_location(images)
                            )
                    except (
                        StreetViewError,
                        CircuitOpenError,
                        ClassificationError,
                    ) as err:
                        err.retry_provenance = fetch_stats  # type: ignore[attr-defined]
                        raise
                    return self._package_result(
                        point,
                        images,
                        presences,
                        degraded,
                        skipped,
                        fetch_stats,
                        clf_before,
                        classifiers,
                    )

            for task in executor.imap(decode_one, tracked()):
                point = window.pop(task.index)
                self._merge_one(
                    task,
                    point,
                    report,
                    store=store,
                    keep_locations=keep_locations,
                    tracer=tracer,
                    root_span=root_span,
                )

            self._finalize_report(
                report,
                baselines,
                coalesce_before,
                cascade_before,
                fees_before,
            )
        report.metrics = registry.delta_since(metrics_before)
        return drawn

    def _survey_baselines(
        self, classifiers: list[LLMIndicatorClassifier]
    ) -> tuple[dict[int, RetryStats], dict, dict | None, float]:
        """Snapshot the shared counters a survey reports deltas of."""
        baselines = {
            id(clf): replace(clf.retry_stats) for clf in classifiers
        }
        coalesce_before = self._coalesce_totals()
        cascade_before = (
            self.cascade.stats.snapshot() if self.cascade is not None else None
        )
        fees_before = self.street_view.usage().fees_usd
        return baselines, coalesce_before, cascade_before, fees_before

    def _package_result(
        self,
        point: SamplePoint,
        images: Sequence[LabeledImage],
        presences: list[IndicatorPresence],
        degraded: int,
        skipped: int,
        fetch_stats: RetryStats,
        clf_before: list[RetryStats] | None,
        classifiers: list[LLMIndicatorClassifier],
    ) -> tuple[LocationResult, int, int, int, RetryStats, dict | None]:
        """Fold one decoded location into the tuple the merge loop eats."""
        union = [
            ind
            for ind in ALL_INDICATORS
            if any(presence[ind] for presence in presences)
        ]
        result = LocationResult(
            latitude=point.location.lat,
            longitude=point.location.lon,
            county=point.county,
            zone_kind=point.zone_kind.value,
            presence=IndicatorPresence(union),
        )
        retry_payload = None
        if clf_before is not None:
            provenance = RetryStats()
            provenance.merge(fetch_stats)
            for clf, base in zip(classifiers, clf_before):
                provenance.merge(_stats_since(clf.retry_stats, base))
            retry_payload = provenance.as_dict()
        return (
            result,
            len(images),
            degraded,
            skipped,
            fetch_stats,
            retry_payload,
        )

    def _merge_one(
        self,
        task: TaskOutcome,
        point: SamplePoint,
        report: SurveyReport,
        *,
        store: SurveyCheckpoint | None,
        keep_locations: bool,
        tracer,
        root_span,
    ) -> None:
        """Merge one outcome, in submission order, on the calling thread.

        The single merge body shared by the sync and async engines —
        identical failure recording, checkpoint restoration, stats
        merging, and checkpoint writes, which is what keeps every
        engine's report byte-identical for the same survey.
        """
        registry = get_metrics()
        with tracer.span(
            "survey.merge", parent=root_span, index=task.index
        ):
            try:
                outcome = task.result()
            except (
                StreetViewError,
                CircuitOpenError,
                ClassificationError,
            ) as err:
                provenance = getattr(err, "retry_provenance", None)
                if provenance is not None:
                    report.retry_stats.merge(provenance)
                registry.inc("survey.locations.failed")
                report.failed_locations.append(
                    FailedLocation(
                        index=task.index,
                        latitude=point.location.lat,
                        longitude=point.location.lon,
                        reason=f"{type(err).__name__}: {err}",
                    )
                )
                return
            if isinstance(outcome, dict):
                self._restore_location(report, outcome, keep_locations)
                return
            result, n_images, degraded, skipped, fetch_stats, retry = (
                outcome
            )
            report.retry_stats.merge(fetch_stats)
            self._record_result(
                report,
                result,
                n_images,
                degraded,
                keep_locations,
                skipped=skipped,
            )
            if store is not None:
                store.record(
                    task.index,
                    self._location_payload(
                        result, n_images, degraded, retry, skipped
                    ),
                )

    def _finalize_report(
        self,
        report: SurveyReport,
        baselines: dict[int, RetryStats],
        coalesce_before: dict,
        cascade_before: dict | None,
        fees_before: float,
    ) -> None:
        """Book the end-of-run deltas against the pre-survey baselines."""
        report.fees_usd = self.street_view.usage().fees_usd - fees_before
        for clf in self._classifiers():
            report.retry_stats.merge(
                _stats_since(clf.retry_stats, baselines[id(clf)])
            )
        report.coalesce_stats = _totals_since(
            self._coalesce_totals(), coalesce_before
        )
        if cascade_before is not None:
            assert self.cascade is not None
            report.cascade_stats = _totals_since(
                self.cascade.stats.snapshot(), cascade_before
            )

    # ------------------------------------------------------------------

    def _classifiers(self) -> list[LLMIndicatorClassifier]:
        if self.classifier is not None:
            return [self.classifier]
        if self.cascade is not None:
            return self.cascade.classifiers()
        assert self.ensemble is not None
        return list(self.ensemble.classifiers.values())

    def _fetch_location(
        self, index: int, point: SamplePoint, stats: RetryStats
    ) -> list[LabeledImage]:
        """Fetch all headings of one location under the retry policy."""
        images: list[LabeledImage] = []
        for offset, capture in enumerate(expand_to_captures([point])):
            outcome = self.retry_policy.execute(
                lambda capture=capture: self.street_view.fetch_capture(
                    capture, render=self.render_pixels
                ),
                retryable=(TransientNetworkError,),
                giveup=(StreetViewError,),
                clock=self.clock,
                breaker=self.gsv_breaker,
                stats=stats,
            )
            served = outcome.result()
            images.append(
                LabeledImage(
                    image_id=f"survey_{index:05d}_{offset}",
                    scene=served.scene,
                    annotations=tuple(
                        (obj.indicator, obj.box)
                        for obj in served.scene.objects
                    ),
                )
            )
        return images

    def _predict_location(
        self, images: Sequence[LabeledImage]
    ) -> tuple[list[IndicatorPresence], int, int]:
        """Predict one location's images.

        Returns ``(presences, degraded votes, skipped member calls)``.
        """
        if self.classifier is not None:
            return self.classifier.predictions(images), 0, 0
        if self.cascade is not None:
            return self.cascade.predict_location(images)
        assert self.ensemble is not None
        records = self.ensemble.resilient_predictions(images)
        return (
            [record.presence for record in records],
            sum(1 for record in records if record.degraded),
            sum(len(record.members_skipped) for record in records),
        )

    @staticmethod
    def _location_payload(
        result: LocationResult,
        images: int,
        degraded: int,
        retry: dict | None = None,
        skipped: int = 0,
    ) -> dict:
        payload = {
            "latitude": result.latitude,
            "longitude": result.longitude,
            "county": result.county,
            "zone_kind": result.zone_kind,
            "present": sorted(ind.value for ind in result.presence.present),
            "images": images,
            "degraded_votes": degraded,
        }
        if retry is not None:
            payload["retry"] = retry
        # Written only when nonzero so pre-existing checkpoint files
        # (and their fingerprints) remain byte-compatible.
        if skipped:
            payload["skipped_votes"] = skipped
        return payload

    @staticmethod
    def _record_result(
        report: SurveyReport,
        result: LocationResult,
        images: int,
        degraded: int,
        keep_locations: bool,
        skipped: int = 0,
    ) -> None:
        """Fold one completed location into the report.

        The single merge point for both modes: batch/keep retains the
        :class:`LocationResult`, aggregate mode folds its presence
        into the accumulators and drops it.  It is also the single
        metrics tap for completions, which keeps the global books
        reconcilable with the report (see :mod:`repro.obs.audit`).
        """
        metrics = get_metrics()
        metrics.inc("survey.locations.completed")
        metrics.inc("survey.images.classified", images)
        if degraded:
            metrics.inc("survey.votes.degraded", degraded)
        if skipped:
            metrics.inc("survey.votes.skipped", skipped)
        report.images_classified += images
        report.degraded_votes += degraded
        report.skipped_votes += skipped
        report.completed_locations += 1
        if keep_locations:
            report.locations.append(result)
            return
        assert report.presence_stats is not None
        assert report.zone_stats is not None
        report.presence_stats.update(result.presence)
        zone = report.zone_stats.setdefault(
            result.zone_kind, PresenceAccumulator()
        )
        zone.update(result.presence)

    @classmethod
    def _restore_location(
        cls, report: SurveyReport, payload: dict, keep_locations: bool = True
    ) -> None:
        cls._record_result(
            report,
            location_from_payload(payload),
            payload["images"],
            payload["degraded_votes"],
            keep_locations,
            skipped=payload.get("skipped_votes", 0),
        )

    def _coalesce_totals(self) -> dict[str, int]:
        """Sum coalescing/caching counters across the LLM clients."""
        totals = {"coalesced": 0, "cache_hits": 0, "upstream_calls": 0}
        seen: set[int] = set()
        for clf in self._classifiers():
            client = getattr(clf, "client", None)
            if client is None or id(client) in seen:
                continue
            seen.add(id(client))
            totals["coalesced"] += getattr(client, "coalesced", 0)
            totals["cache_hits"] += getattr(client, "hits", 0)
            totals["upstream_calls"] += getattr(client, "misses", 0)
        return totals


def location_from_payload(payload: dict) -> LocationResult:
    """Rebuild a :class:`LocationResult` from its checkpoint payload.

    The inverse of :meth:`NeighborhoodDecoder._location_payload`,
    shared by in-run checkpoint restoration and the coordinator's
    cross-shard merge (:mod:`repro.coordinator.merge`).
    """
    return LocationResult(
        latitude=payload["latitude"],
        longitude=payload["longitude"],
        county=payload["county"],
        zone_kind=payload["zone_kind"],
        presence=IndicatorPresence(
            Indicator.from_string(value) for value in payload["present"]
        ),
    )


def _totals_since(
    current: dict[str, int], baseline: dict[str, int]
) -> dict[str, int]:
    """Per-key deltas of two counter snapshots."""
    return {key: current[key] - baseline[key] for key in current}


def _stats_since(current: RetryStats, baseline: RetryStats) -> RetryStats:
    """The portion of ``current`` accumulated after ``baseline``."""
    return current.subtract(baseline)
