"""End-to-end neighborhood decoding: the system a user would deploy.

``NeighborhoodDecoder`` wires the whole paper together: sample
locations from a county's road network, fetch street-view imagery,
classify every capture with an LLM (or a majority-voting ensemble),
and aggregate per-location results into neighborhood-level indicator
statistics — the kind of output public-health studies correlate with
obesity/diabetes prevalence in the work the paper builds on.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..gsv.api import StreetViewClient
from ..gsv.dataset import LabeledImage
from ..geo.county import County
from ..geo.roadnet import build_road_network
from ..geo.sampling import (
    build_sampling_frame,
    expand_to_captures,
    select_survey_locations,
)
from .classifier import LLMIndicatorClassifier
from .indicators import ALL_INDICATORS, Indicator, IndicatorPresence
from .voting import VotingEnsemble


@dataclass
class LocationResult:
    """Decoded indicators at one survey location (4 headings)."""

    latitude: float
    longitude: float
    county: str
    zone_kind: str
    presence: IndicatorPresence  # union over the four headings


@dataclass
class SurveyReport:
    """Aggregated neighborhood survey output."""

    locations: list[LocationResult] = field(default_factory=list)
    images_classified: int = 0
    fees_usd: float = 0.0

    def indicator_rates(self) -> dict[Indicator, float]:
        """Fraction of locations where each indicator was decoded."""
        if not self.locations:
            return {ind: float("nan") for ind in ALL_INDICATORS}
        return {
            ind: float(
                np.mean([loc.presence[ind] for loc in self.locations])
            )
            for ind in ALL_INDICATORS
        }

    def rates_by_zone(self) -> dict[str, dict[Indicator, float]]:
        """Indicator rates broken out by land-use zone."""
        zones: dict[str, list[LocationResult]] = {}
        for location in self.locations:
            zones.setdefault(location.zone_kind, []).append(location)
        return {
            zone: {
                ind: float(
                    np.mean([loc.presence[ind] for loc in group])
                )
                for ind in ALL_INDICATORS
            }
            for zone, group in sorted(zones.items())
        }


@dataclass
class NeighborhoodDecoder:
    """Survey a county with an LLM classifier or voting ensemble.

    Exactly one of ``classifier`` / ``ensemble`` must be provided.
    """

    street_view: StreetViewClient
    classifier: LLMIndicatorClassifier | None = None
    ensemble: VotingEnsemble | None = None

    def __post_init__(self) -> None:
        if (self.classifier is None) == (self.ensemble is None):
            raise ValueError(
                "provide exactly one of classifier or ensemble"
            )

    def survey(
        self,
        county: County,
        n_locations: int,
        seed: int = 0,
    ) -> SurveyReport:
        """Decode ``n_locations`` random roadway locations in a county."""
        graph = build_road_network(county, seed=seed + 17)
        frame = build_sampling_frame(county, graph)
        points = select_survey_locations(
            {county.name: frame}, n_locations, seed=seed + 23
        )
        captures = expand_to_captures(points)

        fees_before = self.street_view.usage().fees_usd
        images: list[LabeledImage] = []
        for index, capture in enumerate(captures):
            served = self.street_view.fetch_capture(capture, render=False)
            images.append(
                LabeledImage(
                    image_id=f"survey_{index:05d}",
                    scene=served.scene,
                    annotations=tuple(
                        (obj.indicator, obj.box)
                        for obj in served.scene.objects
                    ),
                )
            )

        predictions = self._predict(images)

        report = SurveyReport(
            images_classified=len(images),
            fees_usd=self.street_view.usage().fees_usd - fees_before,
        )
        headings_per_point = len(captures) // len(points)
        for point_index, point in enumerate(points):
            start = point_index * headings_per_point
            union = [
                ind
                for ind in ALL_INDICATORS
                if any(
                    predictions[start + offset][ind]
                    for offset in range(headings_per_point)
                )
            ]
            report.locations.append(
                LocationResult(
                    latitude=point.location.lat,
                    longitude=point.location.lon,
                    county=point.county,
                    zone_kind=point.zone_kind.value,
                    presence=IndicatorPresence(union),
                )
            )
        return report

    def _predict(
        self, images: Sequence[LabeledImage]
    ) -> list[IndicatorPresence]:
        if self.classifier is not None:
            return self.classifier.predictions(images)
        assert self.ensemble is not None
        return self.ensemble.predictions(images)
