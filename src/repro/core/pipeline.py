"""End-to-end neighborhood decoding: the system a user would deploy.

``NeighborhoodDecoder`` wires the whole paper together: sample
locations from a county's road network, fetch street-view imagery,
classify every capture with an LLM (or a majority-voting ensemble),
and aggregate per-location results into neighborhood-level indicator
statistics — the kind of output public-health studies correlate with
obesity/diabetes prevalence in the work the paper builds on.

The survey path is fault tolerant: street-view fetches run under the
shared :class:`~repro.resilience.retry.RetryPolicy` (optionally behind
a :class:`~repro.resilience.breaker.CircuitBreaker`), ensemble voting
degrades to the surviving quorum when a member is down, a failed
location is recorded and skipped instead of aborting the survey, and
per-location progress can be checkpointed to disk so a rerun resumes
after the last completed location without re-billing fetched imagery.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from ..gsv.api import (
    StreetViewClient,
    StreetViewError,
    TransientNetworkError,
)
from ..gsv.dataset import LabeledImage
from ..geo.county import County
from ..geo.roadnet import build_road_network
from ..geo.sampling import (
    SamplePoint,
    build_sampling_frame,
    expand_to_captures,
    select_survey_locations,
)
from ..parallel.executor import ParallelExecutor
from ..resilience.breaker import CircuitBreaker, CircuitOpenError
from ..resilience.checkpoint import SurveyCheckpoint
from ..resilience.clock import Clock, WallClock
from ..resilience.retry import RetryPolicy, RetryStats
from .classifier import ClassificationError, LLMIndicatorClassifier
from .indicators import ALL_INDICATORS, Indicator, IndicatorPresence
from .voting import VotingEnsemble


@dataclass
class LocationResult:
    """Decoded indicators at one survey location (4 headings)."""

    latitude: float
    longitude: float
    county: str
    zone_kind: str
    presence: IndicatorPresence  # union over the four headings


@dataclass(frozen=True)
class FailedLocation:
    """A survey location that could not be completed."""

    index: int
    latitude: float
    longitude: float
    reason: str


@dataclass
class SurveyReport:
    """Aggregated neighborhood survey output.

    Partial results are first-class: ``coverage`` is the fraction of
    requested locations completed, ``failed_locations`` names the
    rest, ``degraded_votes`` counts images voted on a reduced quorum,
    and ``retry_stats`` totals the fault handling performed.
    """

    locations: list[LocationResult] = field(default_factory=list)
    images_classified: int = 0
    fees_usd: float = 0.0
    requested_locations: int = 0
    coverage: float = 1.0
    failed_locations: list[FailedLocation] = field(default_factory=list)
    degraded_votes: int = 0
    retry_stats: RetryStats = field(default_factory=RetryStats)

    def indicator_rates(self) -> dict[Indicator, float]:
        """Fraction of locations where each indicator was decoded."""
        if not self.locations:
            return {ind: float("nan") for ind in ALL_INDICATORS}
        return {
            ind: float(
                np.mean([loc.presence[ind] for loc in self.locations])
            )
            for ind in ALL_INDICATORS
        }

    def payload(self) -> dict:
        """Canonical JSON-ready dict of the full report.

        The representation is deliberately exhaustive and ordered so
        that two runs of the same survey — serial or parallel — can be
        compared byte-for-byte via :meth:`to_json`.
        """
        return {
            "requested_locations": self.requested_locations,
            "coverage": self.coverage,
            "images_classified": self.images_classified,
            "fees_usd": round(self.fees_usd, 9),
            "degraded_votes": self.degraded_votes,
            "locations": [
                {
                    "latitude": loc.latitude,
                    "longitude": loc.longitude,
                    "county": loc.county,
                    "zone_kind": loc.zone_kind,
                    "present": sorted(ind.value for ind in loc.presence.present),
                }
                for loc in self.locations
            ],
            "failed_locations": [
                {
                    "index": failed.index,
                    "latitude": failed.latitude,
                    "longitude": failed.longitude,
                    "reason": failed.reason,
                }
                for failed in self.failed_locations
            ],
            "retry_stats": self.retry_stats.as_dict(),
        }

    def to_json(self) -> str:
        """Deterministic JSON serialization of :meth:`payload`."""
        return json.dumps(self.payload(), sort_keys=True)

    def rates_by_zone(self) -> dict[str, dict[Indicator, float]]:
        """Indicator rates broken out by land-use zone."""
        zones: dict[str, list[LocationResult]] = {}
        for location in self.locations:
            zones.setdefault(location.zone_kind, []).append(location)
        return {
            zone: {
                ind: float(
                    np.mean([loc.presence[ind] for loc in group])
                )
                for ind in ALL_INDICATORS
            }
            for zone, group in sorted(zones.items())
        }


@dataclass
class NeighborhoodDecoder:
    """Survey a county with an LLM classifier or voting ensemble.

    Exactly one of ``classifier`` / ``ensemble`` must be provided.
    ``retry_policy`` governs street-view fetches (classifier retry is
    configured on the classifiers themselves); ``gsv_breaker``
    short-circuits a hard-down imagery endpoint.
    """

    street_view: StreetViewClient
    classifier: LLMIndicatorClassifier | None = None
    ensemble: VotingEnsemble | None = None
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    gsv_breaker: CircuitBreaker | None = None
    clock: Clock = field(default_factory=WallClock)

    def __post_init__(self) -> None:
        if (self.classifier is None) == (self.ensemble is None):
            raise ValueError(
                "provide exactly one of classifier or ensemble"
            )

    # ------------------------------------------------------------------

    def survey(
        self,
        county: County,
        n_locations: int,
        seed: int = 0,
        checkpoint: str | Path | None = None,
        workers: int | None = 1,
    ) -> SurveyReport:
        """Decode ``n_locations`` random roadway locations in a county.

        A failed location (exhausted retries, quota, open circuit, all
        ensemble members down) is recorded in ``failed_locations`` and
        the survey continues.  With ``checkpoint`` set, completed
        locations persist to disk and a rerun with the same arguments
        resumes after them — already-billed imagery is never refetched.

        ``workers`` fans per-location fetch+classify work across a
        thread pool (``None``/``0`` → ``os.cpu_count()``).  Results
        merge in submission order and checkpoint writes stay on the
        calling thread, so for a fault-free run the report is
        byte-identical to the serial one (see DESIGN.md §8).
        """
        report = SurveyReport(requested_locations=max(n_locations, 0))
        if n_locations <= 0:
            report.coverage = 0.0
            return report
        graph = build_road_network(county, seed=seed + 17)
        frame = build_sampling_frame(county, graph)
        if not frame:
            report.coverage = 0.0
            return report
        points = select_survey_locations(
            {county.name: frame}, n_locations, seed=seed + 23
        )

        store: SurveyCheckpoint | None = None
        if checkpoint is not None:
            store = SurveyCheckpoint(
                checkpoint,
                key={
                    "county": county.name,
                    "n_locations": n_locations,
                    "seed": seed,
                },
            )

        baselines = {
            id(clf): replace(clf.retry_stats)
            for clf in self._classifiers()
        }
        fees_before = self.street_view.usage().fees_usd
        executor = ParallelExecutor(workers=workers)

        def decode_one(
            indexed: tuple[int, SamplePoint]
        ) -> tuple[LocationResult, int, int] | dict:
            """Fetch+classify one location (runs on a worker thread).

            Checkpointed locations return their stored payload without
            touching the network; errors propagate to the consumer
            below, which records the failure in submission order.
            """
            index, point = indexed
            if store is not None and store.has(index):
                return store.get(index)
            images = self._fetch_location(index, point, report)
            presences, degraded = self._predict_location(images)
            union = [
                ind
                for ind in ALL_INDICATORS
                if any(presence[ind] for presence in presences)
            ]
            result = LocationResult(
                latitude=point.location.lat,
                longitude=point.location.lon,
                county=point.county,
                zone_kind=point.zone_kind.value,
                presence=IndicatorPresence(union),
            )
            return result, len(images), degraded

        # Merging and checkpoint writes happen here, on the calling
        # thread, strictly in submission order — this is what keeps a
        # parallel survey's report identical to a serial one.
        for task in executor.imap(decode_one, enumerate(points)):
            point = points[task.index]
            try:
                outcome = task.result()
            except (StreetViewError, CircuitOpenError, ClassificationError) as err:
                report.failed_locations.append(
                    FailedLocation(
                        index=task.index,
                        latitude=point.location.lat,
                        longitude=point.location.lon,
                        reason=f"{type(err).__name__}: {err}",
                    )
                )
                continue
            if isinstance(outcome, dict):
                self._restore_location(report, outcome)
                continue
            result, n_images, degraded = outcome
            report.locations.append(result)
            report.images_classified += n_images
            report.degraded_votes += degraded
            if store is not None:
                store.record(
                    task.index,
                    self._location_payload(result, n_images, degraded),
                )

        report.fees_usd = self.street_view.usage().fees_usd - fees_before
        report.coverage = len(report.locations) / n_locations
        for clf in self._classifiers():
            report.retry_stats.merge(
                _stats_since(clf.retry_stats, baselines[id(clf)])
            )
        return report

    # ------------------------------------------------------------------

    def _classifiers(self) -> list[LLMIndicatorClassifier]:
        if self.classifier is not None:
            return [self.classifier]
        assert self.ensemble is not None
        return list(self.ensemble.classifiers.values())

    def _fetch_location(
        self, index: int, point: SamplePoint, report: SurveyReport
    ) -> list[LabeledImage]:
        """Fetch all headings of one location under the retry policy."""
        images: list[LabeledImage] = []
        for offset, capture in enumerate(expand_to_captures([point])):
            outcome = self.retry_policy.execute(
                lambda capture=capture: self.street_view.fetch_capture(
                    capture, render=False
                ),
                retryable=(TransientNetworkError,),
                giveup=(StreetViewError,),
                clock=self.clock,
                breaker=self.gsv_breaker,
                stats=report.retry_stats,
            )
            served = outcome.result()
            images.append(
                LabeledImage(
                    image_id=f"survey_{index:05d}_{offset}",
                    scene=served.scene,
                    annotations=tuple(
                        (obj.indicator, obj.box)
                        for obj in served.scene.objects
                    ),
                )
            )
        return images

    def _predict_location(
        self, images: Sequence[LabeledImage]
    ) -> tuple[list[IndicatorPresence], int]:
        """Predict one location's images; returns (presences, degraded)."""
        if self.classifier is not None:
            return self.classifier.predictions(images), 0
        assert self.ensemble is not None
        records = self.ensemble.resilient_predictions(images)
        return (
            [record.presence for record in records],
            sum(1 for record in records if record.degraded),
        )

    @staticmethod
    def _location_payload(
        result: LocationResult, images: int, degraded: int
    ) -> dict:
        return {
            "latitude": result.latitude,
            "longitude": result.longitude,
            "county": result.county,
            "zone_kind": result.zone_kind,
            "present": sorted(ind.value for ind in result.presence.present),
            "images": images,
            "degraded_votes": degraded,
        }

    @staticmethod
    def _restore_location(report: SurveyReport, payload: dict) -> None:
        report.locations.append(
            LocationResult(
                latitude=payload["latitude"],
                longitude=payload["longitude"],
                county=payload["county"],
                zone_kind=payload["zone_kind"],
                presence=IndicatorPresence(
                    Indicator.from_string(value)
                    for value in payload["present"]
                ),
            )
        )
        report.images_classified += payload["images"]
        report.degraded_votes += payload["degraded_votes"]


def _stats_since(current: RetryStats, baseline: RetryStats) -> RetryStats:
    """The portion of ``current`` accumulated after ``baseline``."""
    return RetryStats(
        operations=current.operations - baseline.operations,
        attempts=current.attempts - baseline.attempts,
        retries=current.retries - baseline.retries,
        failures=current.failures - baseline.failures,
        slept_s=current.slept_s - baseline.slept_s,
        breaker_blocks=current.breaker_blocks - baseline.breaker_blocks,
    )
