"""The six environmental indicators studied by the paper.

The paper trains and evaluates on exactly six indicators of the built
environment: streetlight (SL), sidewalk (SW), single-lane road (SR),
multilane road (MR), powerline (PL), and apartment (AP).  This module
is the single source of truth for that taxonomy — every substrate
(scene generation, detection, LLM prompting, metrics) keys off it.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping


class Indicator(enum.Enum):
    """An environmental indicator class.

    Values are stable snake_case identifiers used in datasets, prompt
    catalogs, and result tables.
    """

    STREETLIGHT = "streetlight"
    SIDEWALK = "sidewalk"
    SINGLE_LANE_ROAD = "single_lane_road"
    MULTILANE_ROAD = "multilane_road"
    POWERLINE = "powerline"
    APARTMENT = "apartment"

    @property
    def abbreviation(self) -> str:
        """The paper's two-letter abbreviation (SL/SW/SR/MR/PL/AP)."""
        return _ABBREVIATIONS[self]

    @property
    def display_name(self) -> str:
        """Human-readable name as used in the paper's tables."""
        return _DISPLAY_NAMES[self]

    @classmethod
    def from_string(cls, value: str) -> "Indicator":
        """Parse an indicator from its value, abbreviation, or name.

        Accepts ``"sidewalk"``, ``"SW"``, ``"Sidewalk"`` and similar
        spellings; raises ``ValueError`` for anything unrecognized.
        """
        text = value.strip()
        lowered = text.lower().replace("-", "_").replace(" ", "_")
        for indicator in cls:
            if lowered == indicator.value:
                return indicator
        upper = text.upper()
        for indicator, abbrev in _ABBREVIATIONS.items():
            if upper == abbrev:
                return indicator
        for indicator, name in _DISPLAY_NAMES.items():
            if lowered == name.lower().replace("-", "_").replace(" ", "_"):
                return indicator
        raise ValueError(f"unknown indicator: {value!r}")


_ABBREVIATIONS = {
    Indicator.STREETLIGHT: "SL",
    Indicator.SIDEWALK: "SW",
    Indicator.SINGLE_LANE_ROAD: "SR",
    Indicator.MULTILANE_ROAD: "MR",
    Indicator.POWERLINE: "PL",
    Indicator.APARTMENT: "AP",
}

_DISPLAY_NAMES = {
    Indicator.STREETLIGHT: "Streetlight",
    Indicator.SIDEWALK: "Sidewalk",
    Indicator.SINGLE_LANE_ROAD: "Single-lane road",
    Indicator.MULTILANE_ROAD: "Multilane road",
    Indicator.POWERLINE: "Powerline",
    Indicator.APARTMENT: "Apartment",
}

#: Canonical ordering used in every table of the paper.
ALL_INDICATORS: tuple[Indicator, ...] = (
    Indicator.STREETLIGHT,
    Indicator.SIDEWALK,
    Indicator.SINGLE_LANE_ROAD,
    Indicator.MULTILANE_ROAD,
    Indicator.POWERLINE,
    Indicator.APARTMENT,
)

#: Labeled object counts reported in Section IV-A for the 1,200-image
#: dataset.  Used to sanity-check the synthetic dataset's prevalence.
PAPER_OBJECT_COUNTS: Mapping[Indicator, int] = {
    Indicator.STREETLIGHT: 206,
    Indicator.SIDEWALK: 444,
    Indicator.SINGLE_LANE_ROAD: 346,
    Indicator.MULTILANE_ROAD: 505,
    Indicator.POWERLINE: 301,
    Indicator.APARTMENT: 125,
}


class IndicatorPresence(Mapping[Indicator, bool]):
    """Immutable per-image presence/absence over the six indicators.

    Behaves as a mapping from :class:`Indicator` to ``bool``; missing
    indicators default to absent at construction time so instances are
    always total over the taxonomy.
    """

    __slots__ = ("_present",)

    def __init__(self, present: Iterable[Indicator] = ()) -> None:
        self._present = frozenset(present)
        for item in self._present:
            if not isinstance(item, Indicator):
                raise TypeError(f"not an Indicator: {item!r}")

    def __getitem__(self, key: Indicator) -> bool:
        if not isinstance(key, Indicator):
            raise KeyError(key)
        return key in self._present

    def __iter__(self):
        return iter(ALL_INDICATORS)

    def __len__(self) -> int:
        return len(ALL_INDICATORS)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IndicatorPresence):
            return self._present == other._present
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._present)

    def __repr__(self) -> str:
        names = sorted(ind.value for ind in self._present)
        return f"IndicatorPresence({names})"

    @property
    def present(self) -> frozenset[Indicator]:
        """The set of indicators present in the image."""
        return self._present

    def as_vector(self) -> tuple[bool, ...]:
        """Presence as a tuple in canonical indicator order."""
        return tuple(ind in self._present for ind in ALL_INDICATORS)

    @classmethod
    def from_mapping(cls, mapping: Mapping[Indicator, bool]) -> "IndicatorPresence":
        return cls(ind for ind, present in mapping.items() if present)

    @classmethod
    def from_vector(cls, vector: Iterable[bool]) -> "IndicatorPresence":
        values = tuple(bool(v) for v in vector)
        if len(values) != len(ALL_INDICATORS):
            raise ValueError(
                f"expected {len(ALL_INDICATORS)} values, got {len(values)}"
            )
        return cls(
            ind for ind, flag in zip(ALL_INDICATORS, values) if flag
        )
