"""Driving an LLM over survey images: prompt → request → parsed answers.

``LLMIndicatorClassifier`` is the workhorse of the paper's evaluation:
it builds the prompt for the configured style/language, attaches the
image, calls the chat client with bounded retry (rate limits and
transient server errors are real failure modes of the commercial
APIs), parses the Yes/No answers, and returns per-image
:class:`~repro.core.indicators.IndicatorPresence` predictions.

Retry is delegated to the shared
:class:`~repro.resilience.retry.RetryPolicy`, so backoff never sleeps
after the final failed attempt and all waiting goes through an
injectable clock.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..gsv.dataset import LabeledImage
from ..llm.base import (
    DEFAULT_TEMPERATURE,
    DEFAULT_TOP_P,
    ChatClient,
    ChatMessage,
    ChatRequest,
    ImageAttachment,
    Usage,
)
from ..llm.errors import RateLimitError, ServerError
from ..llm.language import Language
from ..resilience.clock import Clock, WallClock
from ..resilience.retry import RetryPolicy, RetryStats
from .indicators import Indicator, IndicatorPresence
from .languages import PAPER_QUESTION_ORDER
from .parsing import ResponseParseError, answers_to_presence, parse_answers
from .prompts import PromptStyle, prompt_for_style


class ClassificationError(RuntimeError):
    """An image could not be classified within the retry budget."""


@dataclass
class ClassifierConfig:
    """Prompting and retry configuration.

    ``few_shot_exemplars`` prepends labeled example images to every
    request (the §V cross-lingual mitigation); it requires the
    parallel prompt style.

    ``retry`` overrides ``max_attempts``/``backoff_s`` with a fully
    configured policy; when absent a policy is derived from them
    (full-jitter exponential backoff scaled by ``backoff_s``).
    """

    style: PromptStyle = PromptStyle.PARALLEL
    language: Language = Language.ENGLISH
    indicators: tuple[Indicator, ...] = PAPER_QUESTION_ORDER
    temperature: float = DEFAULT_TEMPERATURE
    top_p: float = DEFAULT_TOP_P
    max_attempts: int = 4
    backoff_s: float = 0.0  # keep zero in tests/benches; >0 in production
    few_shot_exemplars: tuple = ()
    retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.few_shot_exemplars and self.style is not PromptStyle.PARALLEL:
            raise ValueError(
                "few-shot exemplars require the parallel prompt style"
            )

    def retry_policy(self) -> RetryPolicy:
        """The configured policy, or one derived from the legacy knobs."""
        if self.retry is not None:
            return self.retry
        return RetryPolicy(
            max_attempts=self.max_attempts, base_delay_s=self.backoff_s
        )


@dataclass
class ClassificationOutcome:
    """Per-image prediction with provenance.

    ``usage`` totals the tokens this classification spent across *all*
    attempts (a parse-failed reply still billed its tokens), so
    per-call attribution — the cascade router's per-tier cost books —
    never undercounts retries.  ``indicators`` records which questions
    were actually asked (the full configured set, or the escalated
    subset on a partial-indicator call).
    """

    image_id: str
    presence: IndicatorPresence
    raw_response: str
    attempts: int
    usage: Usage | None = None
    indicators: tuple[Indicator, ...] = ()


@dataclass
class LLMIndicatorClassifier:
    """Classify images with one LLM under one prompting configuration."""

    client: ChatClient
    config: ClassifierConfig = field(default_factory=ClassifierConfig)
    clock: Clock = field(default_factory=WallClock)
    retry_stats: RetryStats = field(default_factory=RetryStats)

    RETRYABLE = (RateLimitError, ServerError, ResponseParseError)

    @property
    def prompt(self) -> str:
        return prompt_for_style(
            self.config.style, self.config.language, self.config.indicators
        )

    def prompt_for(self, indicators: tuple[Indicator, ...]) -> str:
        """The configured prompt restricted to an indicator subset."""
        return prompt_for_style(
            self.config.style, self.config.language, indicators
        )

    def classify_image(
        self,
        image: LabeledImage,
        indicators: tuple[Indicator, ...] | None = None,
    ) -> ClassificationOutcome:
        """Classify a single image, retrying transient failures.

        ``indicators`` restricts the questions to a subset of the
        configured ones (the cascade's partial-indicator escalation:
        ask only about the doubted indicators instead of all six).
        The simulated models answer each question independently of the
        others in the prompt, so a subset answer for an indicator is
        bit-equal to the full-prompt answer for it.

        Raises :class:`ClassificationError` (a ``RuntimeError``) when
        the retry budget is exhausted.
        """
        asked = self.config.indicators if indicators is None else indicators
        if not asked:
            raise ValueError("no indicators to classify")
        unknown = set(asked) - set(self.config.indicators)
        if unknown:
            raise ValueError(
                f"indicators outside the configured set: {sorted(unknown)}"
            )
        spent: list[Usage] = []

        def attempt() -> tuple[str, IndicatorPresence]:
            text, usage = self._request(image, asked)
            if usage is not None:
                spent.append(usage)
            parsed = parse_answers(
                text,
                expected=len(asked),
                language=self.config.language,
            )
            return text, answers_to_presence(parsed, asked)

        outcome = self.config.retry_policy().execute(
            attempt,
            retryable=self.RETRYABLE,
            clock=self.clock,
            stats=self.retry_stats,
        )
        if not outcome.ok:
            raise ClassificationError(
                f"classification of {image.image_id} failed after "
                f"{outcome.attempts} attempts"
            ) from outcome.error
        text, presence = outcome.value
        usage = (
            Usage(
                prompt_tokens=sum(u.prompt_tokens for u in spent),
                completion_tokens=sum(u.completion_tokens for u in spent),
            )
            if spent
            else None
        )
        return ClassificationOutcome(
            image_id=image.image_id,
            presence=presence,
            raw_response=text,
            attempts=outcome.attempts,
            usage=usage,
            indicators=tuple(asked),
        )

    def _request(
        self,
        image: LabeledImage,
        indicators: tuple[Indicator, ...],
    ) -> tuple[str, Usage | None]:
        """Issue one chat request for ``image`` (zero- or few-shot).

        Returns ``(response text, token usage)``; the request built for
        the full indicator set is identical to what ``ChatClient.ask``
        would build, so responses stay bit-equal to the legacy path.
        """
        if self.config.few_shot_exemplars:
            from .fewshot import build_few_shot_request

            request = build_few_shot_request(
                model=self.client.model_name,
                image=image,
                exemplars=self.config.few_shot_exemplars,
                language=self.config.language,
                indicators=indicators,
                temperature=self.config.temperature,
                top_p=self.config.top_p,
            )
        else:
            request = ChatRequest(
                model=self.client.model_name,
                messages=(
                    ChatMessage(
                        role="user",
                        text=self.prompt_for(indicators),
                        images=(ImageAttachment(scene=image.scene),),
                    ),
                ),
                temperature=self.config.temperature,
                top_p=self.config.top_p,
            )
        response = self.client.complete(request)
        return response.content, response.usage

    def classify(
        self,
        images: Sequence[LabeledImage],
        indicators: tuple[Indicator, ...] | None = None,
    ) -> list[ClassificationOutcome]:
        """Classify a batch of images."""
        return [
            self.classify_image(image, indicators=indicators)
            for image in images
        ]

    def predictions(
        self, images: Sequence[LabeledImage]
    ) -> list[IndicatorPresence]:
        """Batch classify, returning just the presence predictions."""
        return [outcome.presence for outcome in self.classify(images)]
