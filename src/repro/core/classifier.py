"""Driving an LLM over survey images: prompt → request → parsed answers.

``LLMIndicatorClassifier`` is the workhorse of the paper's evaluation:
it builds the prompt for the configured style/language, attaches the
image, calls the chat client with bounded retry (rate limits and
transient server errors are real failure modes of the commercial
APIs), parses the Yes/No answers, and returns per-image
:class:`~repro.core.indicators.IndicatorPresence` predictions.

Retry is delegated to the shared
:class:`~repro.resilience.retry.RetryPolicy`, so backoff never sleeps
after the final failed attempt and all waiting goes through an
injectable clock.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from ..gsv.dataset import LabeledImage
from ..llm.base import (
    DEFAULT_TEMPERATURE,
    DEFAULT_TOP_P,
    ChatClient,
    ImageAttachment,
)
from ..llm.errors import RateLimitError, ServerError
from ..llm.language import Language
from ..resilience.clock import Clock, WallClock
from ..resilience.retry import RetryPolicy, RetryStats
from .indicators import Indicator, IndicatorPresence
from .languages import PAPER_QUESTION_ORDER
from .parsing import ResponseParseError, answers_to_presence, parse_answers
from .prompts import PromptStyle, prompt_for_style


class ClassificationError(RuntimeError):
    """An image could not be classified within the retry budget."""


@dataclass
class ClassifierConfig:
    """Prompting and retry configuration.

    ``few_shot_exemplars`` prepends labeled example images to every
    request (the §V cross-lingual mitigation); it requires the
    parallel prompt style.

    ``retry`` overrides ``max_attempts``/``backoff_s`` with a fully
    configured policy; when absent a policy is derived from them
    (full-jitter exponential backoff scaled by ``backoff_s``).
    """

    style: PromptStyle = PromptStyle.PARALLEL
    language: Language = Language.ENGLISH
    indicators: tuple[Indicator, ...] = PAPER_QUESTION_ORDER
    temperature: float = DEFAULT_TEMPERATURE
    top_p: float = DEFAULT_TOP_P
    max_attempts: int = 4
    backoff_s: float = 0.0  # keep zero in tests/benches; >0 in production
    few_shot_exemplars: tuple = ()
    retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.few_shot_exemplars and self.style is not PromptStyle.PARALLEL:
            raise ValueError(
                "few-shot exemplars require the parallel prompt style"
            )

    def retry_policy(self) -> RetryPolicy:
        """The configured policy, or one derived from the legacy knobs."""
        if self.retry is not None:
            return self.retry
        return RetryPolicy(
            max_attempts=self.max_attempts, base_delay_s=self.backoff_s
        )


@dataclass
class ClassificationOutcome:
    """Per-image prediction with provenance."""

    image_id: str
    presence: IndicatorPresence
    raw_response: str
    attempts: int


@dataclass
class LLMIndicatorClassifier:
    """Classify images with one LLM under one prompting configuration."""

    client: ChatClient
    config: ClassifierConfig = field(default_factory=ClassifierConfig)
    clock: Clock = field(default_factory=WallClock)
    retry_stats: RetryStats = field(default_factory=RetryStats)

    RETRYABLE = (RateLimitError, ServerError, ResponseParseError)

    @property
    def prompt(self) -> str:
        return prompt_for_style(
            self.config.style, self.config.language, self.config.indicators
        )

    def classify_image(self, image: LabeledImage) -> ClassificationOutcome:
        """Classify a single image, retrying transient failures.

        Raises :class:`ClassificationError` (a ``RuntimeError``) when
        the retry budget is exhausted.
        """

        def attempt() -> tuple[str, IndicatorPresence]:
            text = self._request(image)
            parsed = parse_answers(
                text,
                expected=len(self.config.indicators),
                language=self.config.language,
            )
            return text, answers_to_presence(parsed, self.config.indicators)

        outcome = self.config.retry_policy().execute(
            attempt,
            retryable=self.RETRYABLE,
            clock=self.clock,
            stats=self.retry_stats,
        )
        if not outcome.ok:
            raise ClassificationError(
                f"classification of {image.image_id} failed after "
                f"{outcome.attempts} attempts"
            ) from outcome.error
        text, presence = outcome.value
        return ClassificationOutcome(
            image_id=image.image_id,
            presence=presence,
            raw_response=text,
            attempts=outcome.attempts,
        )

    def _request(self, image: LabeledImage) -> str:
        """Issue one chat request for ``image`` (zero- or few-shot)."""
        if self.config.few_shot_exemplars:
            from .fewshot import build_few_shot_request

            request = build_few_shot_request(
                model=self.client.model_name,
                image=image,
                exemplars=self.config.few_shot_exemplars,
                language=self.config.language,
                indicators=self.config.indicators,
                temperature=self.config.temperature,
                top_p=self.config.top_p,
            )
            return self.client.complete(request).content
        return self.client.ask(
            self.prompt,
            ImageAttachment(scene=image.scene),
            temperature=self.config.temperature,
            top_p=self.config.top_p,
        )

    def classify(
        self, images: Sequence[LabeledImage]
    ) -> list[ClassificationOutcome]:
        """Classify a batch of images."""
        return [self.classify_image(image) for image in images]

    def predictions(
        self, images: Sequence[LabeledImage]
    ) -> list[IndicatorPresence]:
        """Batch classify, returning just the presence predictions."""
        return [outcome.presence for outcome in self.classify(images)]
