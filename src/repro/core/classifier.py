"""Driving an LLM over survey images: prompt → request → parsed answers.

``LLMIndicatorClassifier`` is the workhorse of the paper's evaluation:
it builds the prompt for the configured style/language, attaches the
image, calls the chat client with bounded retry (rate limits and
transient server errors are real failure modes of the commercial
APIs), parses the Yes/No answers, and returns per-image
:class:`~repro.core.indicators.IndicatorPresence` predictions.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..gsv.dataset import LabeledImage
from ..llm.base import (
    DEFAULT_TEMPERATURE,
    DEFAULT_TOP_P,
    ChatClient,
    ImageAttachment,
)
from ..llm.errors import RateLimitError, ServerError
from ..llm.language import Language
from .indicators import Indicator, IndicatorPresence
from .languages import PAPER_QUESTION_ORDER
from .parsing import ResponseParseError, answers_to_presence, parse_answers
from .prompts import PromptStyle, prompt_for_style


@dataclass
class ClassifierConfig:
    """Prompting and retry configuration.

    ``few_shot_exemplars`` prepends labeled example images to every
    request (the §V cross-lingual mitigation); it requires the
    parallel prompt style.
    """

    style: PromptStyle = PromptStyle.PARALLEL
    language: Language = Language.ENGLISH
    indicators: tuple[Indicator, ...] = PAPER_QUESTION_ORDER
    temperature: float = DEFAULT_TEMPERATURE
    top_p: float = DEFAULT_TOP_P
    max_attempts: int = 4
    backoff_s: float = 0.0  # keep zero in tests/benches; >0 in production
    few_shot_exemplars: tuple = ()

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.few_shot_exemplars and self.style is not PromptStyle.PARALLEL:
            raise ValueError(
                "few-shot exemplars require the parallel prompt style"
            )


@dataclass
class ClassificationOutcome:
    """Per-image prediction with provenance."""

    image_id: str
    presence: IndicatorPresence
    raw_response: str
    attempts: int


@dataclass
class LLMIndicatorClassifier:
    """Classify images with one LLM under one prompting configuration."""

    client: ChatClient
    config: ClassifierConfig = field(default_factory=ClassifierConfig)

    @property
    def prompt(self) -> str:
        return prompt_for_style(
            self.config.style, self.config.language, self.config.indicators
        )

    def classify_image(self, image: LabeledImage) -> ClassificationOutcome:
        """Classify a single image, retrying transient failures."""
        last_error: Exception | None = None
        for attempt in range(1, self.config.max_attempts + 1):
            try:
                text = self._request(image)
                parsed = parse_answers(
                    text,
                    expected=len(self.config.indicators),
                    language=self.config.language,
                )
                presence = answers_to_presence(
                    parsed, self.config.indicators
                )
                return ClassificationOutcome(
                    image_id=image.image_id,
                    presence=presence,
                    raw_response=text,
                    attempts=attempt,
                )
            except (RateLimitError, ServerError, ResponseParseError) as err:
                last_error = err
                if self.config.backoff_s > 0:
                    time.sleep(self.config.backoff_s * attempt)
        raise RuntimeError(
            f"classification of {image.image_id} failed after "
            f"{self.config.max_attempts} attempts"
        ) from last_error

    def _request(self, image: LabeledImage) -> str:
        """Issue one chat request for ``image`` (zero- or few-shot)."""
        if self.config.few_shot_exemplars:
            from .fewshot import build_few_shot_request

            request = build_few_shot_request(
                model=self.client.model_name,
                image=image,
                exemplars=self.config.few_shot_exemplars,
                language=self.config.language,
                indicators=self.config.indicators,
                temperature=self.config.temperature,
                top_p=self.config.top_p,
            )
            return self.client.complete(request).content
        return self.client.ask(
            self.prompt,
            ImageAttachment(scene=image.scene),
            temperature=self.config.temperature,
            top_p=self.config.top_p,
        )

    def classify(
        self, images: Sequence[LabeledImage]
    ) -> list[ClassificationOutcome]:
        """Classify a batch of images."""
        return [self.classify_image(image) for image in images]

    def predictions(
        self, images: Sequence[LabeledImage]
    ) -> list[IndicatorPresence]:
        """Batch classify, returning just the presence predictions."""
        return [outcome.presence for outcome in self.classify(images)]
