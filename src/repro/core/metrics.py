"""Per-indicator binary classification metrics.

The LLM evaluation treats each indicator as an image-level presence
question, so the relevant metrics are the per-class confusion counts
and the derived precision / recall / F1 / accuracy — the columns of
the paper's Tables III–VI — plus their macro averages (Figs. 4–6).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .indicators import ALL_INDICATORS, Indicator, IndicatorPresence


@dataclass(frozen=True)
class ConfusionCounts:
    """Binary confusion counts for one indicator."""

    tp: int = 0
    fp: int = 0
    tn: int = 0
    fn: int = 0

    def __add__(self, other: "ConfusionCounts") -> "ConfusionCounts":
        return ConfusionCounts(
            self.tp + other.tp,
            self.fp + other.fp,
            self.tn + other.tn,
            self.fn + other.fn,
        )

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else float("nan")

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else float("nan")

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if np.isnan(p) or np.isnan(r) or p + r == 0:
            return float("nan") if np.isnan(p) or np.isnan(r) else 0.0
        return 2 * p * r / (p + r)

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.total if self.total else float("nan")

    @property
    def true_positive_rate(self) -> float:
        return self.recall

    @property
    def false_positive_rate(self) -> float:
        denom = self.fp + self.tn
        return self.fp / denom if denom else float("nan")


@dataclass
class ClassificationReport:
    """Per-indicator confusion counts with paper-style summaries."""

    counts: dict[Indicator, ConfusionCounts]

    @classmethod
    def from_predictions(
        cls,
        truths: Sequence[IndicatorPresence],
        predictions: Sequence[IndicatorPresence],
    ) -> "ClassificationReport":
        if len(truths) != len(predictions):
            raise ValueError(
                f"{len(truths)} truths vs {len(predictions)} predictions"
            )
        tallies = {ind: [0, 0, 0, 0] for ind in ALL_INDICATORS}  # tp fp tn fn
        for truth, predicted in zip(truths, predictions):
            for indicator in ALL_INDICATORS:
                actual = truth[indicator]
                guess = predicted[indicator]
                if guess and actual:
                    tallies[indicator][0] += 1
                elif guess and not actual:
                    tallies[indicator][1] += 1
                elif not guess and not actual:
                    tallies[indicator][2] += 1
                else:
                    tallies[indicator][3] += 1
        return cls(
            counts={
                ind: ConfusionCounts(tp, fp, tn, fn)
                for ind, (tp, fp, tn, fn) in tallies.items()
            }
        )

    # ------------------------------------------------------------------

    def metric(self, indicator: Indicator, name: str) -> float:
        return getattr(self.counts[indicator], name)

    def macro(self, name: str) -> float:
        values = [
            getattr(self.counts[ind], name) for ind in ALL_INDICATORS
        ]
        finite = [v for v in values if not np.isnan(v)]
        return float(np.mean(finite)) if finite else float("nan")

    @property
    def mean_precision(self) -> float:
        return self.macro("precision")

    @property
    def mean_recall(self) -> float:
        return self.macro("recall")

    @property
    def mean_f1(self) -> float:
        return self.macro("f1")

    @property
    def mean_accuracy(self) -> float:
        return self.macro("accuracy")

    def rows(self) -> list[dict[str, float | str]]:
        """Appendix-table shaped rows + the Average line."""
        rows: list[dict[str, float | str]] = []
        for indicator in ALL_INDICATORS:
            counts = self.counts[indicator]
            rows.append(
                {
                    "label": indicator.display_name,
                    "precision": counts.precision,
                    "recall": counts.recall,
                    "f1": counts.f1,
                    "accuracy": counts.accuracy,
                }
            )
        rows.append(
            {
                "label": "Average",
                "precision": self.mean_precision,
                "recall": self.mean_recall,
                "f1": self.mean_f1,
                "accuracy": self.mean_accuracy,
            }
        )
        return rows


class ConfusionAccumulator:
    """Streaming, mergeable builder of a :class:`ClassificationReport`.

    The batch path materializes every ``(truth, prediction)`` pair and
    calls :meth:`ClassificationReport.from_predictions` once; the
    streaming path folds pairs shard by shard through this accumulator
    instead.  Confusion counts are exact integers, so any order of
    :meth:`update` / :meth:`merge` calls over the same pairs produces
    a report *equal* to the batch one — not approximately, equal.
    """

    def __init__(self) -> None:
        # tp fp tn fn — same tally layout as from_predictions.
        self._tallies = {ind: [0, 0, 0, 0] for ind in ALL_INDICATORS}
        self.pairs_seen = 0

    def update(
        self, truth: IndicatorPresence, predicted: IndicatorPresence
    ) -> None:
        for indicator in ALL_INDICATORS:
            actual = truth[indicator]
            guess = predicted[indicator]
            if guess and actual:
                self._tallies[indicator][0] += 1
            elif guess and not actual:
                self._tallies[indicator][1] += 1
            elif not guess and not actual:
                self._tallies[indicator][2] += 1
            else:
                self._tallies[indicator][3] += 1
        self.pairs_seen += 1

    def update_many(
        self,
        truths: Sequence[IndicatorPresence],
        predictions: Sequence[IndicatorPresence],
    ) -> None:
        if len(truths) != len(predictions):
            raise ValueError(
                f"{len(truths)} truths vs {len(predictions)} predictions"
            )
        for truth, predicted in zip(truths, predictions):
            self.update(truth, predicted)

    def merge(self, other: "ConfusionAccumulator") -> "ConfusionAccumulator":
        for indicator in ALL_INDICATORS:
            mine = self._tallies[indicator]
            theirs = other._tallies[indicator]
            for i in range(4):
                mine[i] += theirs[i]
        self.pairs_seen += other.pairs_seen
        return self

    def report(self) -> ClassificationReport:
        return ClassificationReport(
            counts={
                ind: ConfusionCounts(tp, fp, tn, fn)
                for ind, (tp, fp, tn, fn) in self._tallies.items()
            }
        )


class PresenceAccumulator:
    """Streaming, mergeable indicator-presence rates.

    Replaces ``np.mean([loc.presence[ind] for loc in locations])`` for
    the streaming survey: it keeps one integer count per indicator
    plus the location total.  ``count / n`` in float64 is the same
    value ``np.mean`` computes over the materialized boolean list
    (both reduce to an exact-integer sum divided by ``n``), so the
    streaming report's indicator rates are byte-identical to batch.
    """

    def __init__(self) -> None:
        self._counts = {ind: 0 for ind in ALL_INDICATORS}
        self.n = 0

    def update(self, presence: IndicatorPresence) -> None:
        for indicator in ALL_INDICATORS:
            if presence[indicator]:
                self._counts[indicator] += 1
        self.n += 1

    def merge(self, other: "PresenceAccumulator") -> "PresenceAccumulator":
        for indicator in ALL_INDICATORS:
            self._counts[indicator] += other._counts[indicator]
        self.n += other.n
        return self

    def rate(self, indicator: Indicator) -> float:
        if not self.n:
            return float("nan")
        return self._counts[indicator] / self.n

    def rates(self) -> dict[Indicator, float]:
        return {ind: self.rate(ind) for ind in ALL_INDICATORS}


def accuracy_by_indicator(
    truths: Sequence[IndicatorPresence],
    predictions: Sequence[IndicatorPresence],
) -> dict[Indicator, float]:
    """Shortcut: per-indicator accuracy (Fig. 5 bars)."""
    report = ClassificationReport.from_predictions(truths, predictions)
    return {
        ind: report.counts[ind].accuracy for ind in ALL_INDICATORS
    }
