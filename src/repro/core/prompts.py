"""Prompt builders: parallel vs sequential, in four languages.

The paper compares two zero-shot prompting strategies (§IV-C1):

* **parallel** — one request containing a format header plus each
  indicator's *simple, self-contained question* ("Is there a sidewalk
  visible in the image? Respond only with 'Yes' or 'No'."), joined by
  a light conjunction.  One sentence, one question.
* **sequential** — one request packing all indicator clauses into a
  single run-on sentence ("... determine whether the road is a
  multi-lane road ..., whether the road is a single-lane road ...,
  whether a sidewalk is visible ...").  The complex grammatical
  structure is exactly what the paper (following Linzbach et al.)
  blames for the recall drop.

Both builders are order- and subset-configurable; the defaults follow
the paper's question order.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence

from ..llm.language import Language
from .indicators import Indicator
from .languages import (
    CONJUNCTIONS,
    FORMAT_HEADERS,
    PAPER_QUESTION_ORDER,
    QUESTIONS,
    SEQUENTIAL_CLAUSES,
    SEQUENTIAL_LEADS,
)


class PromptStyle(enum.Enum):
    """The two prompting strategies compared in Fig. 4."""

    PARALLEL = "parallel"
    SEQUENTIAL = "sequential"


def build_parallel_prompt(
    language: Language = Language.ENGLISH,
    indicators: Sequence[Indicator] = PAPER_QUESTION_ORDER,
    include_format_header: bool = True,
) -> str:
    """Assemble the paper's parallel prompt.

    Each question is its own simple sentence; questions after the
    first are prefixed with the language's conjunction, mirroring the
    paper's "putting 'and' in between each one".
    """
    _validate_indicators(indicators)
    questions = QUESTIONS[language]
    conjunction = CONJUNCTIONS[language]
    parts = []
    if include_format_header:
        parts.append(FORMAT_HEADERS[language])
    for position, indicator in enumerate(indicators):
        question = questions[indicator]
        if position == 0:
            parts.append(question)
        else:
            parts.append(f"{conjunction} {question[0].lower()}{question[1:]}")
    return "\n".join(parts)


def build_sequential_prompt(
    language: Language = Language.ENGLISH,
    indicators: Sequence[Indicator] = PAPER_QUESTION_ORDER,
) -> str:
    """Assemble the run-on "sequential" prompt.

    All clauses share one sentence, separated only by commas — the
    complex grammatical construction that degrades recall in Fig. 4.
    """
    _validate_indicators(indicators)
    lead = SEQUENTIAL_LEADS[language]
    clauses = SEQUENTIAL_CLAUSES[language]
    if language is Language.CHINESE:
        body = "，".join(clauses[ind] for ind in indicators)
        return f"{lead}{body}，并按顺序依次回答。"
    connective = {"en": "whether", "es": "si", "bn": ""}[language.value]
    joined = ", ".join(
        f"{connective} {clauses[ind]}".strip() for ind in indicators
    )
    tail = {
        "en": ", answering each in order.",
        "es": ", respondiendo a cada una en orden.",
        "bn": ", প্রতিটির উত্তর ক্রমানুসারে দিন।",
    }[language.value]
    return f"{lead} {joined}{tail}"


def build_single_prompt(
    indicator: Indicator, language: Language = Language.ENGLISH
) -> str:
    """One indicator's standalone question (Table II style)."""
    return QUESTIONS[language][indicator]


def prompt_for_style(
    style: PromptStyle,
    language: Language = Language.ENGLISH,
    indicators: Sequence[Indicator] = PAPER_QUESTION_ORDER,
) -> str:
    """Dispatch on prompt style."""
    if style is PromptStyle.PARALLEL:
        return build_parallel_prompt(language, indicators)
    return build_sequential_prompt(language, indicators)


def _validate_indicators(indicators: Sequence[Indicator]) -> None:
    if not indicators:
        raise ValueError("prompt needs at least one indicator")
    if len(set(indicators)) != len(indicators):
        raise ValueError("duplicate indicators in prompt")
