"""Few-shot prompting: the paper's proposed cross-lingual mitigation.

Section V suggests that "few-shot learning could partially mitigate"
the non-English recall gap: showing the model labeled exemplar images
grounds the translated indicator terms in visual evidence.  This
module builds few-shot prompts — exemplar blocks (image + the correct
answer line) prepended to the paper's parallel prompt — and the
simulated models honor them: an exemplar block that demonstrates an
indicator's term reduces that term's language threshold shift (see
``repro.llm.models``).

This is an *extension experiment* beyond the paper's evaluation,
implementing its stated future work.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..gsv.dataset import LabeledImage
from ..llm.base import ChatMessage, ChatRequest, ImageAttachment
from ..llm.language import Language
from .indicators import Indicator
from .languages import PAPER_QUESTION_ORDER
from .parsing import presence_to_answer_text
from .prompts import build_parallel_prompt

#: Marker that opens an exemplar block; the simulated models detect it.
EXAMPLE_MARKERS: dict[Language, str] = {
    Language.ENGLISH: "Example:",
    Language.SPANISH: "Ejemplo:",
    Language.CHINESE: "示例：",
    Language.BENGALI: "উদাহরণ:",
}


def build_few_shot_messages(
    exemplars: Sequence[LabeledImage],
    language: Language = Language.ENGLISH,
    indicators: tuple[Indicator, ...] = PAPER_QUESTION_ORDER,
) -> tuple[ChatMessage, ...]:
    """Exemplar messages: each shows an image and its correct answers."""
    if not exemplars:
        raise ValueError("few-shot prompting needs at least one exemplar")
    marker = EXAMPLE_MARKERS[language]
    messages = []
    for exemplar in exemplars:
        answers = presence_to_answer_text(
            exemplar.presence, indicators, language
        )
        messages.append(
            ChatMessage(
                role="user",
                text=f"{marker} {answers}",
                images=(ImageAttachment(scene=exemplar.scene),),
            )
        )
    return tuple(messages)


def build_few_shot_request(
    model: str,
    image: LabeledImage,
    exemplars: Sequence[LabeledImage],
    language: Language = Language.ENGLISH,
    indicators: tuple[Indicator, ...] = PAPER_QUESTION_ORDER,
    temperature: float = 1.0,
    top_p: float = 0.95,
) -> ChatRequest:
    """A complete few-shot classification request."""
    prompt = build_parallel_prompt(language, indicators)
    messages = build_few_shot_messages(exemplars, language, indicators) + (
        ChatMessage(
            role="user",
            text=prompt,
            images=(ImageAttachment(scene=image.scene),),
        ),
    )
    return ChatRequest(
        model=model,
        messages=messages,
        temperature=temperature,
        top_p=top_p,
    )


def count_exemplars(text: str) -> int:
    """How many exemplar blocks a request's text carries."""
    return sum(text.count(marker) for marker in EXAMPLE_MARKERS.values())
