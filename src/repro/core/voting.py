"""Majority voting across multiple LLMs (§IV-C2).

The paper's final accuracy boost comes from a majority vote over the
top three models (Gemini, Claude, Grok): an indicator is declared
present when at least two of the three agree.  This module provides
both the pure vote combinator (usable on any prediction lists) and an
ensemble classifier that drives several
:class:`~repro.core.classifier.LLMIndicatorClassifier` instances and
votes their outputs.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from ..gsv.dataset import LabeledImage
from ..obs.trace import get_tracer
from ..parallel.executor import ParallelExecutor
from ..resilience.breaker import CircuitBreaker
from .classifier import ClassificationError, LLMIndicatorClassifier
from .indicators import ALL_INDICATORS, Indicator, IndicatorPresence


def majority_vote(
    votes: Sequence[IndicatorPresence],
    quorum: int | None = None,
) -> IndicatorPresence:
    """Combine presence votes for one image.

    ``quorum`` defaults to a strict majority (two of three, three of
    four, ...).  Ties under an even vote count with the default quorum
    resolve to *present* only when the quorum is met.
    """
    if not votes:
        raise ValueError("no votes to combine")
    threshold = quorum if quorum is not None else len(votes) // 2 + 1
    if not 1 <= threshold <= len(votes):
        raise ValueError(
            f"quorum {threshold} invalid for {len(votes)} voters"
        )
    present = []
    for indicator in ALL_INDICATORS:
        agreement = sum(1 for vote in votes if vote[indicator])
        if agreement >= threshold:
            present.append(indicator)
    return IndicatorPresence(present)


def vote_predictions(
    per_model: Mapping[str, Sequence[IndicatorPresence]],
    quorum: int | None = None,
) -> list[IndicatorPresence]:
    """Vote aligned per-model prediction lists into one list."""
    if not per_model:
        raise ValueError("no model predictions")
    lengths = {len(preds) for preds in per_model.values()}
    if len(lengths) != 1:
        raise ValueError(f"prediction lists differ in length: {lengths}")
    names = sorted(per_model)
    n_images = lengths.pop()
    return [
        majority_vote(
            [per_model[name][index] for name in names], quorum=quorum
        )
        for index in range(n_images)
    ]


@dataclass(frozen=True)
class VoteRecord:
    """One image's vote with degradation provenance.

    ``members_failed`` lists members whose classification failed (or
    whose circuit was open); the vote then proceeded on the surviving
    quorum — the graceful-degradation path a production survey needs
    when one of three commercial APIs is down.
    """

    image_id: str
    presence: IndicatorPresence
    members_voted: tuple[str, ...]
    members_failed: tuple[str, ...]

    @property
    def degraded(self) -> bool:
        return bool(self.members_failed)


@dataclass
class VotingEnsemble:
    """Drive several classifiers and majority-vote their predictions.

    ``breakers`` optionally maps member names to per-endpoint
    :class:`~repro.resilience.breaker.CircuitBreaker` instances; a
    member whose circuit is open is skipped without burning attempts,
    and repeated member failures trip it.

    ``executor`` fans the repeated per-member queries of
    :meth:`vote_image` out concurrently — the paper's ensemble drives
    three or four *independent* commercial APIs, so member latency
    overlaps instead of adding.  Votes combine by sorted member name
    either way, so the voted result is executor-independent.
    """

    classifiers: dict[str, LLMIndicatorClassifier]
    quorum: int | None = None
    breakers: dict[str, CircuitBreaker] | None = None
    executor: ParallelExecutor | None = None

    def __post_init__(self) -> None:
        if len(self.classifiers) < 2:
            raise ValueError("an ensemble needs at least two classifiers")
        if self.breakers:
            unknown = set(self.breakers) - set(self.classifiers)
            if unknown:
                raise ValueError(
                    f"breakers for unknown members: {sorted(unknown)}"
                )

    def predictions(
        self, images: Sequence[LabeledImage]
    ) -> list[IndicatorPresence]:
        per_model = {
            name: classifier.predictions(images)
            for name, classifier in self.classifiers.items()
        }
        return vote_predictions(per_model, quorum=self.quorum)

    def predictions_with_members(
        self, images: Sequence[LabeledImage]
    ) -> tuple[list[IndicatorPresence], dict[str, list[IndicatorPresence]]]:
        """Voted predictions plus each member's own predictions."""
        per_model = {
            name: classifier.predictions(images)
            for name, classifier in self.classifiers.items()
        }
        return vote_predictions(per_model, quorum=self.quorum), per_model

    # -- graceful degradation ------------------------------------------

    def vote_image(self, image: LabeledImage) -> VoteRecord:
        """Vote one image, dropping members that fail.

        The quorum adapts to the survivors: the configured ``quorum``
        applies while enough members voted, otherwise it falls back to
        a strict majority of the survivors.  Raises
        :class:`~repro.core.classifier.ClassificationError` only when
        *every* member fails.
        """
        with get_tracer().span(
            "survey.vote", image_id=image.image_id
        ) as span:
            record = self._vote_image(image)
            span.set(
                members=len(record.members_voted),
                degraded=record.degraded,
            )
            return record

    def _vote_image(self, image: LabeledImage) -> VoteRecord:
        names = sorted(self.classifiers)
        if self.executor is not None:
            member_votes = [
                task.result()
                for task in self.executor.imap(
                    lambda name: self._member_vote(name, image), names
                )
            ]
        else:
            member_votes = [self._member_vote(name, image) for name in names]
        votes: dict[str, IndicatorPresence] = {}
        failed: list[str] = []
        for name, presence in member_votes:
            if presence is None:
                failed.append(name)
            else:
                votes[name] = presence
        if not votes:
            raise ClassificationError(
                f"all {len(self.classifiers)} ensemble members failed "
                f"on {image.image_id}"
            )
        threshold = len(votes) // 2 + 1
        if self.quorum is not None and self.quorum <= len(votes):
            threshold = self.quorum
        presence = majority_vote(
            [votes[name] for name in sorted(votes)], quorum=threshold
        )
        return VoteRecord(
            image_id=image.image_id,
            presence=presence,
            members_voted=tuple(sorted(votes)),
            members_failed=tuple(failed),
        )

    def _member_vote(
        self, name: str, image: LabeledImage
    ) -> tuple[str, IndicatorPresence | None]:
        """One member's vote on one image; ``None`` marks a failure."""
        classifier = self.classifiers[name]
        breaker = (self.breakers or {}).get(name)
        if breaker is not None and not breaker.allow():
            return name, None
        try:
            outcome = classifier.classify_image(image)
        except ClassificationError:
            if breaker is not None:
                breaker.record_failure()
            return name, None
        if breaker is not None:
            breaker.record_success()
        return name, outcome.presence

    def resilient_predictions(
        self, images: Sequence[LabeledImage]
    ) -> list[VoteRecord]:
        """Vote a batch image-by-image, surviving member outages."""
        return [self.vote_image(image) for image in images]


def agreement_rate(
    per_model: Mapping[str, Sequence[IndicatorPresence]],
    indicator: Indicator,
) -> float:
    """Fraction of images on which all models agree about ``indicator``."""
    names = sorted(per_model)
    if not names:
        raise ValueError("no model predictions")
    n_images = len(per_model[names[0]])
    if n_images == 0:
        return float("nan")
    unanimous = 0
    for index in range(n_images):
        answers = {per_model[name][index][indicator] for name in names}
        if len(answers) == 1:
            unanimous += 1
    return unanimous / n_images
