"""Majority voting across multiple LLMs (§IV-C2).

The paper's final accuracy boost comes from a majority vote over the
top three models (Gemini, Claude, Grok): an indicator is declared
present when at least two of the three agree.  This module provides
both the pure vote combinator (usable on any prediction lists) and an
ensemble classifier that drives several
:class:`~repro.core.classifier.LLMIndicatorClassifier` instances and
votes their outputs.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from ..gsv.dataset import LabeledImage
from .classifier import LLMIndicatorClassifier
from .indicators import ALL_INDICATORS, Indicator, IndicatorPresence


def majority_vote(
    votes: Sequence[IndicatorPresence],
    quorum: int | None = None,
) -> IndicatorPresence:
    """Combine presence votes for one image.

    ``quorum`` defaults to a strict majority (two of three, three of
    four, ...).  Ties under an even vote count with the default quorum
    resolve to *present* only when the quorum is met.
    """
    if not votes:
        raise ValueError("no votes to combine")
    threshold = quorum if quorum is not None else len(votes) // 2 + 1
    if not 1 <= threshold <= len(votes):
        raise ValueError(
            f"quorum {threshold} invalid for {len(votes)} voters"
        )
    present = []
    for indicator in ALL_INDICATORS:
        agreement = sum(1 for vote in votes if vote[indicator])
        if agreement >= threshold:
            present.append(indicator)
    return IndicatorPresence(present)


def vote_predictions(
    per_model: Mapping[str, Sequence[IndicatorPresence]],
    quorum: int | None = None,
) -> list[IndicatorPresence]:
    """Vote aligned per-model prediction lists into one list."""
    if not per_model:
        raise ValueError("no model predictions")
    lengths = {len(preds) for preds in per_model.values()}
    if len(lengths) != 1:
        raise ValueError(f"prediction lists differ in length: {lengths}")
    names = sorted(per_model)
    n_images = lengths.pop()
    return [
        majority_vote(
            [per_model[name][index] for name in names], quorum=quorum
        )
        for index in range(n_images)
    ]


@dataclass
class VotingEnsemble:
    """Drive several classifiers and majority-vote their predictions."""

    classifiers: dict[str, LLMIndicatorClassifier]
    quorum: int | None = None

    def __post_init__(self) -> None:
        if len(self.classifiers) < 2:
            raise ValueError("an ensemble needs at least two classifiers")

    def predictions(
        self, images: Sequence[LabeledImage]
    ) -> list[IndicatorPresence]:
        per_model = {
            name: classifier.predictions(images)
            for name, classifier in self.classifiers.items()
        }
        return vote_predictions(per_model, quorum=self.quorum)

    def predictions_with_members(
        self, images: Sequence[LabeledImage]
    ) -> tuple[list[IndicatorPresence], dict[str, list[IndicatorPresence]]]:
        """Voted predictions plus each member's own predictions."""
        per_model = {
            name: classifier.predictions(images)
            for name, classifier in self.classifiers.items()
        }
        return vote_predictions(per_model, quorum=self.quorum), per_model


def agreement_rate(
    per_model: Mapping[str, Sequence[IndicatorPresence]],
    indicator: Indicator,
) -> float:
    """Fraction of images on which all models agree about ``indicator``."""
    names = sorted(per_model)
    if not names:
        raise ValueError("no model predictions")
    n_images = len(per_model[names[0]])
    if n_images == 0:
        return float("nan")
    unanimous = 0
    for index in range(n_images):
        answers = {per_model[name][index][indicator] for name in names}
        if len(answers) == 1:
            unanimous += 1
    return unanimous / n_images
