"""Majority voting across multiple LLMs (§IV-C2).

The paper's final accuracy boost comes from a majority vote over the
top three models (Gemini, Claude, Grok): an indicator is declared
present when at least two of the three agree.  This module provides
both the pure vote combinator (usable on any prediction lists) and an
ensemble classifier that drives several
:class:`~repro.core.classifier.LLMIndicatorClassifier` instances and
votes their outputs.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from ..gsv.dataset import LabeledImage
from ..obs.trace import get_tracer
from ..parallel.executor import ParallelExecutor
from ..resilience.breaker import CircuitBreaker
from .classifier import ClassificationError, LLMIndicatorClassifier
from .indicators import ALL_INDICATORS, Indicator, IndicatorPresence


def majority_vote(
    votes: Sequence[IndicatorPresence],
    quorum: int | None = None,
    indicators: Sequence[Indicator] = ALL_INDICATORS,
) -> IndicatorPresence:
    """Combine presence votes for one image.

    ``quorum`` defaults to a strict majority (two of three, three of
    four, ...).  Ties under an even vote count with the default quorum
    resolve to *present* only when the quorum is met.  ``indicators``
    restricts the vote to a subset (partial-indicator escalation: the
    cascade only brings the doubted indicators to the ensemble).
    """
    if not votes:
        raise ValueError("no votes to combine")
    threshold = quorum if quorum is not None else len(votes) // 2 + 1
    if not 1 <= threshold <= len(votes):
        raise ValueError(
            f"quorum {threshold} invalid for {len(votes)} voters"
        )
    present = []
    for indicator in indicators:
        agreement = sum(1 for vote in votes if vote[indicator])
        if agreement >= threshold:
            present.append(indicator)
    return IndicatorPresence(present)


def decided_presence(
    yes_count: int,
    cast: int,
    remaining: int,
    quorum: int | None = None,
) -> bool | None:
    """Is one indicator's vote already mathematically decided?

    ``yes_count`` of the ``cast`` successful votes so far said present;
    ``remaining`` members have not voted yet.  Returns ``True`` /
    ``False`` when *every* possible completion — each remaining member
    may vote yes, vote no, or fail — produces that outcome under the
    ensemble's adaptive threshold (the configured ``quorum`` while
    enough members survive, else a strict majority of the survivors),
    and ``None`` while the outcome is still open.

    This is the early-exit oracle: skipping members is sound only when
    the answer is invariant over all completions, including failures
    that would have shrunk the surviving quorum.
    """
    if yes_count < 0 or yes_count > cast or remaining < 0:
        raise ValueError(
            f"inconsistent tally: {yes_count}/{cast} with "
            f"{remaining} remaining"
        )
    always_present = True
    never_present = True
    for extra in range(remaining + 1):  # members that go on to vote
        survivors = cast + extra
        if survivors == 0:
            continue  # all remaining fail too: no vote happens at all
        threshold = survivors // 2 + 1
        if quorum is not None and quorum <= survivors:
            threshold = quorum
        if yes_count < threshold:
            always_present = False
        if yes_count + extra >= threshold:
            never_present = False
    if always_present and not never_present:
        return True
    if never_present and not always_present:
        return False
    return None


def vote_predictions(
    per_model: Mapping[str, Sequence[IndicatorPresence]],
    quorum: int | None = None,
) -> list[IndicatorPresence]:
    """Vote aligned per-model prediction lists into one list."""
    if not per_model:
        raise ValueError("no model predictions")
    lengths = {len(preds) for preds in per_model.values()}
    if len(lengths) != 1:
        raise ValueError(f"prediction lists differ in length: {lengths}")
    names = sorted(per_model)
    n_images = lengths.pop()
    return [
        majority_vote(
            [per_model[name][index] for name in names], quorum=quorum
        )
        for index in range(n_images)
    ]


@dataclass(frozen=True)
class VoteRecord:
    """One image's vote with degradation provenance.

    ``members_failed`` lists members whose classification failed (or
    whose circuit was open); the vote then proceeded on the surviving
    quorum — the graceful-degradation path a production survey needs
    when one of three commercial APIs is down.

    ``members_skipped`` lists members never asked because the outcome
    was already mathematically decided (early exit); the tokens they
    would have spent are the saving.  ``prompt_tokens`` /
    ``completion_tokens`` total the usage of the members that did vote.
    """

    image_id: str
    presence: IndicatorPresence
    members_voted: tuple[str, ...]
    members_failed: tuple[str, ...]
    members_skipped: tuple[str, ...] = ()
    prompt_tokens: int = 0
    completion_tokens: int = 0

    @property
    def degraded(self) -> bool:
        return bool(self.members_failed)


@dataclass
class VotingEnsemble:
    """Drive several classifiers and majority-vote their predictions.

    ``breakers`` optionally maps member names to per-endpoint
    :class:`~repro.resilience.breaker.CircuitBreaker` instances; a
    member whose circuit is open is skipped without burning attempts,
    and repeated member failures trip it.

    ``executor`` fans the repeated per-member queries of
    :meth:`vote_image` out concurrently — the paper's ensemble drives
    three or four *independent* commercial APIs, so member latency
    overlaps instead of adding.  Votes combine by sorted member name
    either way, so the voted result is executor-independent.

    ``early_exit`` stops issuing member calls once every asked
    indicator is mathematically decided (see :func:`decided_presence`);
    it only applies on the serial path (an executor has already
    launched every member) and is off by default because skipping calls
    changes retry accounting, which golden fixtures pin.
    """

    classifiers: dict[str, LLMIndicatorClassifier]
    quorum: int | None = None
    breakers: dict[str, CircuitBreaker] | None = None
    executor: ParallelExecutor | None = None
    early_exit: bool = False

    def __post_init__(self) -> None:
        if len(self.classifiers) < 2:
            raise ValueError("an ensemble needs at least two classifiers")
        if self.breakers:
            unknown = set(self.breakers) - set(self.classifiers)
            if unknown:
                raise ValueError(
                    f"breakers for unknown members: {sorted(unknown)}"
                )

    def predictions(
        self, images: Sequence[LabeledImage]
    ) -> list[IndicatorPresence]:
        per_model = {
            name: classifier.predictions(images)
            for name, classifier in self.classifiers.items()
        }
        return vote_predictions(per_model, quorum=self.quorum)

    def predictions_with_members(
        self, images: Sequence[LabeledImage]
    ) -> tuple[list[IndicatorPresence], dict[str, list[IndicatorPresence]]]:
        """Voted predictions plus each member's own predictions."""
        per_model = {
            name: classifier.predictions(images)
            for name, classifier in self.classifiers.items()
        }
        return vote_predictions(per_model, quorum=self.quorum), per_model

    # -- graceful degradation ------------------------------------------

    def vote_image(
        self,
        image: LabeledImage,
        indicators: tuple[Indicator, ...] | None = None,
    ) -> VoteRecord:
        """Vote one image, dropping members that fail.

        The quorum adapts to the survivors: the configured ``quorum``
        applies while enough members voted, otherwise it falls back to
        a strict majority of the survivors.  ``indicators`` restricts
        both the member prompts and the vote to a subset (the cascade
        escalates only the doubted indicators).  Raises
        :class:`~repro.core.classifier.ClassificationError` only when
        *every* member fails.
        """
        with get_tracer().span(
            "survey.vote", image_id=image.image_id
        ) as span:
            record = self._vote_image(image, indicators)
            span.set(
                members=len(record.members_voted),
                degraded=record.degraded,
            )
            return record

    def _vote_image(
        self,
        image: LabeledImage,
        indicators: tuple[Indicator, ...] | None = None,
    ) -> VoteRecord:
        names = sorted(self.classifiers)
        skipped: list[str] = []
        if self.executor is not None:
            member_votes = [
                task.result()
                for task in self.executor.imap(
                    lambda name: self._member_vote(name, image, indicators),
                    names,
                )
            ]
        elif self.early_exit:
            member_votes, skipped = self._vote_serial_early_exit(
                names, image, indicators
            )
        else:
            member_votes = [
                self._member_vote(name, image, indicators) for name in names
            ]
        votes: dict[str, IndicatorPresence] = {}
        failed: list[str] = []
        prompt_tokens = completion_tokens = 0
        for name, presence, usage in member_votes:
            if presence is None:
                failed.append(name)
            else:
                votes[name] = presence
            if usage is not None:
                prompt_tokens += usage.prompt_tokens
                completion_tokens += usage.completion_tokens
        if not votes:
            raise ClassificationError(
                f"all {len(self.classifiers)} ensemble members failed "
                f"on {image.image_id}"
            )
        threshold = len(votes) // 2 + 1
        if self.quorum is not None and self.quorum <= len(votes):
            threshold = self.quorum
        presence = majority_vote(
            [votes[name] for name in sorted(votes)],
            quorum=threshold,
            indicators=(
                ALL_INDICATORS if indicators is None else indicators
            ),
        )
        return VoteRecord(
            image_id=image.image_id,
            presence=presence,
            members_voted=tuple(sorted(votes)),
            members_failed=tuple(failed),
            members_skipped=tuple(skipped),
            prompt_tokens=prompt_tokens,
            completion_tokens=completion_tokens,
        )

    def _vote_serial_early_exit(
        self,
        names: Sequence[str],
        image: LabeledImage,
        indicators: tuple[Indicator, ...] | None,
    ) -> tuple[list[tuple[str, IndicatorPresence | None, object]], list[str]]:
        """Serial member loop that stops once every indicator is decided."""
        asked = ALL_INDICATORS if indicators is None else indicators
        member_votes: list[tuple[str, IndicatorPresence | None, object]] = []
        yes_counts = dict.fromkeys(asked, 0)
        cast = 0
        for position, name in enumerate(names):
            vote = self._member_vote(name, image, indicators)
            member_votes.append(vote)
            _, presence, _ = vote
            if presence is not None:
                cast += 1
                for indicator in asked:
                    if presence[indicator]:
                        yes_counts[indicator] += 1
            remaining = len(names) - position - 1
            if remaining == 0 or cast == 0:
                continue
            if all(
                decided_presence(
                    yes_counts[indicator], cast, remaining, self.quorum
                )
                is not None
                for indicator in asked
            ):
                skipped = list(names[position + 1 :])
                return member_votes, skipped
        return member_votes, []

    def _member_vote(
        self,
        name: str,
        image: LabeledImage,
        indicators: tuple[Indicator, ...] | None = None,
    ) -> tuple[str, IndicatorPresence | None, object]:
        """One member's vote on one image; ``None`` marks a failure.

        The third element is the member's token
        :class:`~repro.llm.base.Usage` (``None`` on failure — tokens a
        failed member burned are still visible in its client stats).
        """
        classifier = self.classifiers[name]
        breaker = (self.breakers or {}).get(name)
        if breaker is not None and not breaker.allow():
            return name, None, None
        try:
            outcome = classifier.classify_image(image, indicators=indicators)
        except ClassificationError:
            if breaker is not None:
                breaker.record_failure()
            return name, None, None
        if breaker is not None:
            breaker.record_success()
        return name, outcome.presence, outcome.usage

    def resilient_predictions(
        self, images: Sequence[LabeledImage]
    ) -> list[VoteRecord]:
        """Vote a batch image-by-image, surviving member outages."""
        return [self.vote_image(image) for image in images]


def agreement_rate(
    per_model: Mapping[str, Sequence[IndicatorPresence]],
    indicator: Indicator,
) -> float:
    """Fraction of images on which all models agree about ``indicator``."""
    names = sorted(per_model)
    if not names:
        raise ValueError("no model predictions")
    n_images = len(per_model[names[0]])
    if n_images == 0:
        return float("nan")
    unanimous = 0
    for index in range(n_images):
        answers = {per_model[name][index][indicator] for name in names}
        if len(answers) == 1:
            unanimous += 1
    return unanimous / n_images
