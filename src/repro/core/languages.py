"""Multilingual prompt catalog (English, Spanish, Chinese, Bengali).

Transcribes the paper's prompts: the English questions from Table II
and the Spanish / Simplified Chinese / Bengali parallel prompts from
Appendix B.  Question templates are keyed by indicator so the prompt
builders can assemble parallel or sequential prompts in any of the
four languages with any question subset/order.
"""

from __future__ import annotations

from ..llm.language import Language
from .indicators import Indicator

#: Question order used throughout the paper's prompts.
PAPER_QUESTION_ORDER: tuple[Indicator, ...] = (
    Indicator.MULTILANE_ROAD,
    Indicator.SINGLE_LANE_ROAD,
    Indicator.SIDEWALK,
    Indicator.STREETLIGHT,
    Indicator.POWERLINE,
    Indicator.APARTMENT,
)

#: Per-language, per-indicator simple questions (with the response
#: instruction attached, as in the paper's prompt boxes).
QUESTIONS: dict[Language, dict[Indicator, str]] = {
    Language.ENGLISH: {
        Indicator.MULTILANE_ROAD: (
            "Is the road shown in the image a multi-lane road (more than "
            "one lane per direction)? Respond only with 'Yes' or 'No'."
        ),
        Indicator.SINGLE_LANE_ROAD: (
            "Is the road in the image a single-lane road (one lane per "
            "direction)? Respond only with 'Yes' or 'No'."
        ),
        Indicator.SIDEWALK: (
            "Is there a sidewalk visible in the image? Respond only with "
            "'Yes' or 'No'."
        ),
        Indicator.STREETLIGHT: (
            "Is there a streetlight visible in the image? Respond only "
            "with 'Yes' or 'No'."
        ),
        Indicator.POWERLINE: (
            "Is there a powerline visible in the image? Respond only with "
            "'Yes' or 'No'."
        ),
        Indicator.APARTMENT: (
            "Is there an apartment visible in the image? Respond only "
            "with 'Yes' or 'No'."
        ),
    },
    Language.SPANISH: {
        Indicator.MULTILANE_ROAD: (
            "¿La carretera que se muestra en la imagen tiene varios "
            "carriles (más de un carril por sentido)? Responda solo con "
            "'Sí' o 'No'."
        ),
        Indicator.SINGLE_LANE_ROAD: (
            "¿La carretera que se muestra en la imagen tiene un solo "
            "carril (un carril por sentido)? Responda solo con 'Sí' o "
            "'No'."
        ),
        Indicator.SIDEWALK: (
            "¿Se ve una acera en la imagen? Responda solo con 'Sí' o 'No'."
        ),
        Indicator.STREETLIGHT: (
            "¿Se ve un alumbrado público en la imagen? Responda solo con "
            "'Sí' o 'No'."
        ),
        Indicator.POWERLINE: (
            "¿Se ve un cable eléctrico en la imagen? Responda solo con "
            "'Sí' o 'No'."
        ),
        Indicator.APARTMENT: (
            "¿Se ve un apartamento en la imagen? Responda solo con 'Sí' o "
            "'No'."
        ),
    },
    Language.CHINESE: {
        Indicator.MULTILANE_ROAD: (
            "图片中显示的道路是多车道公路（每个方向有超过一条车道）吗？"
            "请仅回答“是”或“否”。"
        ),
        Indicator.SINGLE_LANE_ROAD: (
            "图片中的道路是单车道公路（每个方向只有一条车道）吗？"
            "请仅回答“是”或“否”。"
        ),
        Indicator.SIDEWALK: (
            "图片中是否有可见的路边人行道？仅回答“是”或“否”。"
        ),
        Indicator.STREETLIGHT: (
            "图片中是否有可见的路灯？仅回答“是”或“否”。"
        ),
        Indicator.POWERLINE: (
            "图片中是否有可见的电线？请回答“是”或“否”。"
        ),
        Indicator.APARTMENT: (
            "图片中是否有可见的公寓？仅回答“是”或“否”。"
        ),
    },
    Language.BENGALI: {
        Indicator.MULTILANE_ROAD: (
            "ছবিতে দেখানো রাস্তাটি কি বহু-লেনের রাস্তা (প্রতি দিকে একাধিক লেন)? "
            "অনুগ্রহ করে কেবল 'হ্যাঁ' বা 'না' দিয়ে উত্তর দিন।"
        ),
        Indicator.SINGLE_LANE_ROAD: (
            "ছবিতে দেখানো রাস্তাটি কি এক-লেনের রাস্তা (প্রতি দিকে এক লেন)? "
            "অনুগ্রহ করে কেবল 'হ্যাঁ' বা 'না' দিয়ে উত্তর দিন।"
        ),
        Indicator.SIDEWALK: (
            "ছবিতে কি কোনও ফুটপাত দেখা যাচ্ছে? কেবল 'হ্যাঁ' বা 'না' দিয়ে উত্তর দিন।"
        ),
        Indicator.STREETLIGHT: (
            "ছবিতে কি কোনও রাস্তার আলো দেখা যাচ্ছে? কেবল 'হ্যাঁ' বা 'না' দিয়ে উত্তর দিন।"
        ),
        Indicator.POWERLINE: (
            "ছবিতে কি কোনও বিদ্যুতের লাইন দেখা যাচ্ছে? অনুগ্রহ করে 'হ্যাঁ' বা 'না' "
            "দিয়ে উত্তর দিন।"
        ),
        Indicator.APARTMENT: (
            "ছবিতে কি কোনও অ্যাপার্টমেন্ট দেখা যাচ্ছে? কেবল 'হ্যাঁ' বা 'না' দিয়ে উত্তর দিন।"
        ),
    },
}

#: Format headers instructing the comma-separated answer style, as in
#: the paper's prompt boxes ("Respond in this format: Yes, No, ...").
FORMAT_HEADERS: dict[Language, str] = {
    Language.ENGLISH: (
        "Respond exactly in this format and no other: "
        "Yes, No, No, Yes, No, Yes."
    ),
    Language.SPANISH: (
        "Por favor, responda exactamente en este formato y ningún otro: "
        "sí, no, no, sí, no, no."
    ),
    Language.CHINESE: "请严格按照以下格式回答，不得使用其他格式：是，否，否，是，是，否。",
    Language.BENGALI: "ঠিক এই ফর্ম্যাটে উত্তর দিন: হ্যাঁ, না, না, হ্যাঁ, না, না।",
}

#: Connective used between questions in the parallel prompt ("And ...").
CONJUNCTIONS: dict[Language, str] = {
    Language.ENGLISH: "And",
    Language.SPANISH: "Y",
    Language.CHINESE: "并且",
    Language.BENGALI: "এবং",
}

#: Sequential-style scaffolding: one run-on sentence whose clauses pack
#: every indicator mention together (the "complex grammatical
#: construction" the paper contrasts with simple parallel questions).
SEQUENTIAL_LEADS: dict[Language, str] = {
    Language.ENGLISH: (
        "Looking carefully at the attached street image, considering the "
        "roadway configuration and every roadside element, determine "
        "whether"
    ),
    Language.SPANISH: (
        "Observando cuidadosamente la imagen adjunta de la calle, "
        "considerando la configuración de la vía y cada elemento al "
        "borde, determine si"
    ),
    Language.CHINESE: "仔细观察所附街道图片，结合道路结构与路边各个要素，判断",
    Language.BENGALI: (
        "সংযুক্ত রাস্তার ছবিটি মনোযোগ দিয়ে দেখে, রাস্তার বিন্যাস ও পাশের প্রতিটি উপাদান "
        "বিবেচনা করে নির্ধারণ করুন"
    ),
}

#: Sequential clause per indicator: the bare claim being verified,
#: embedding the same lexicon terms as the simple questions.
SEQUENTIAL_CLAUSES: dict[Language, dict[Indicator, str]] = {
    Language.ENGLISH: {
        Indicator.MULTILANE_ROAD: (
            "the road is a multi-lane road with more than one lane per "
            "direction"
        ),
        Indicator.SINGLE_LANE_ROAD: "the road is a single-lane road",
        Indicator.SIDEWALK: "a sidewalk is visible",
        Indicator.STREETLIGHT: "a streetlight is visible",
        Indicator.POWERLINE: "a powerline is visible",
        Indicator.APARTMENT: "an apartment is visible",
    },
    Language.SPANISH: {
        Indicator.MULTILANE_ROAD: (
            "la carretera tiene varios carriles por sentido"
        ),
        Indicator.SINGLE_LANE_ROAD: "la carretera tiene un solo carril",
        Indicator.SIDEWALK: "se ve una acera",
        Indicator.STREETLIGHT: "se ve un alumbrado público",
        Indicator.POWERLINE: "se ve un cable eléctrico",
        Indicator.APARTMENT: "se ve un apartamento",
    },
    Language.CHINESE: {
        Indicator.MULTILANE_ROAD: "道路是否为多车道公路",
        Indicator.SINGLE_LANE_ROAD: "道路是否为单车道公路",
        Indicator.SIDEWALK: "是否可见人行道",
        Indicator.STREETLIGHT: "是否可见路灯",
        Indicator.POWERLINE: "是否可见电线",
        Indicator.APARTMENT: "是否可见公寓",
    },
    Language.BENGALI: {
        Indicator.MULTILANE_ROAD: "রাস্তাটি বহু-লেনের রাস্তা কিনা",
        Indicator.SINGLE_LANE_ROAD: "রাস্তাটি এক-লেনের রাস্তা কিনা",
        Indicator.SIDEWALK: "ফুটপাত দেখা যাচ্ছে কিনা",
        Indicator.STREETLIGHT: "রাস্তার আলো দেখা যাচ্ছে কিনা",
        Indicator.POWERLINE: "বিদ্যুতের লাইন দেখা যাচ্ছে কিনা",
        Indicator.APARTMENT: "অ্যাপার্টমেন্ট দেখা যাচ্ছে কিনা",
    },
}
