"""Pluggable time source for everything that waits.

Retry backoff, circuit-breaker recovery windows, and rate limiters all
measure and spend time through a ``Clock``.  Tests and fault scripts
inject a :class:`VirtualClock` so outage scenarios replay in
microseconds and assert on the exact sleeps taken; production code
uses :class:`WallClock`.

This is the **only** module in the repository allowed to call
``time.sleep`` — every other wait must go through an injected clock,
which is what keeps the fault-injection suite deterministic.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Anything that can tell monotonic time and block for a while."""

    def now(self) -> float:
        """Current monotonic time in seconds."""
        ...

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (which may be zero)."""
        ...


class VirtualClock:
    """A manually advanced clock for deterministic tests.

    Every sleep is recorded in :attr:`sleeps` and advances the clock
    instantly, so backoff schedules can be asserted exactly.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self.sleeps: list[float] = []
        self._lock = threading.Lock()

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep {seconds}s")
        with self._lock:
            self.sleeps.append(seconds)
            self._now += seconds

    def wait_condition(
        self, cond: threading.Condition, timeout: float
    ) -> None:
        """Virtual timed wait: record the sleep and return instantly.

        Called with ``cond`` held.  Virtual time advances by the full
        timeout — there is no real blocking to interrupt — so waiters
        observe exactly the sleeps a wall clock would have taken.
        """
        self.sleep(timeout)

    async def sleep_async(self, seconds: float) -> None:
        """Async virtual sleep: records and advances without yielding."""
        self.sleep(seconds)


@dataclass
class WallClock:
    """The real clock."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def wait_condition(
        self, cond: threading.Condition, timeout: float
    ) -> None:
        """Timed wait on ``cond`` (held by the caller).

        Unlike :meth:`sleep`, this releases the condition's lock while
        blocked and wakes early on ``notify`` — the primitive a rate
        limiter needs so one sleeping waiter neither holds up refills
        nor burns CPU polling.
        """
        if timeout > 0:
            cond.wait(timeout)

    async def sleep_async(self, seconds: float) -> None:
        """Async sleep that yields to the event loop instead of blocking."""
        if seconds > 0:
            await asyncio.sleep(seconds)
