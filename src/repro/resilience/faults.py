"""Deterministic fault injection: scripted outages you can replay.

The street-view client's ``failure_rate`` gives *statistical* faults;
testing a resilience layer needs *scripted* ones — "calls 5–7 fail
transiently", "every 3rd call is rate limited", "everything after
call 40 hits the quota cliff" — that replay identically on every run.

:class:`FaultSchedule` is that script: a set of :class:`FaultRule`
windows over a 1-based call counter.  It plugs into
:class:`~repro.gsv.api.StreetViewClient` (``fault_schedule=``) and
wraps any chat client via :class:`FaultyChatClient`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..llm.base import ChatClient, ChatRequest, ChatResponse

#: A fault is an exception instance or a zero-arg factory producing one.
FaultSpec = Exception | Callable[[], Exception]


@dataclass(frozen=True)
class FaultRule:
    """Inject ``fault`` on calls in ``[start, end]`` (1-based, inclusive).

    ``end=None`` means forever (sustained outage / quota cliff);
    ``every`` fires only every Nth call inside the window (sustained
    rate limiting).
    """

    fault: FaultSpec
    start: int = 1
    end: int | None = None
    every: int = 1

    def __post_init__(self) -> None:
        if self.start < 1:
            raise ValueError(f"start must be >= 1: {self.start}")
        if self.end is not None and self.end < self.start:
            raise ValueError(f"end {self.end} before start {self.start}")
        if self.every < 1:
            raise ValueError(f"every must be >= 1: {self.every}")

    def matches(self, call_index: int) -> bool:
        if call_index < self.start:
            return False
        if self.end is not None and call_index > self.end:
            return False
        return (call_index - self.start) % self.every == 0

    def build(self) -> Exception:
        return self.fault() if callable(self.fault) else self.fault


class FaultSchedule:
    """An ordered fault script consulted once per call.

    Builders return ``self`` so scripts chain::

        schedule = (
            FaultSchedule()
            .burst(TransientNetworkError("outage"), start=5, length=3)
            .every_nth(RateLimitError("429"), n=7)
            .after(QuotaExceededError("cliff"), start=40)
        )
    """

    def __init__(self, rules: tuple[FaultRule, ...] = ()) -> None:
        self._rules: list[FaultRule] = list(rules)
        self.calls = 0
        self.injected = 0

    # -- builders ------------------------------------------------------

    def add(self, rule: FaultRule) -> "FaultSchedule":
        self._rules.append(rule)
        return self

    def burst(
        self, fault: FaultSpec, *, start: int, length: int
    ) -> "FaultSchedule":
        """``length`` consecutive failing calls beginning at ``start``."""
        return self.add(FaultRule(fault, start=start, end=start + length - 1))

    def every_nth(
        self, fault: FaultSpec, *, n: int, start: int = 1
    ) -> "FaultSchedule":
        """Fail every ``n``-th call from ``start`` on, indefinitely."""
        return self.add(FaultRule(fault, start=start, every=n))

    def after(self, fault: FaultSpec, *, start: int) -> "FaultSchedule":
        """Fail every call from ``start`` on (hard-down / quota cliff)."""
        return self.add(FaultRule(fault, start=start))

    # -- consumption ---------------------------------------------------

    def check(self) -> None:
        """Count one call and raise its scheduled fault, if any.

        The first matching rule wins (rules are consulted in insertion
        order).
        """
        self.calls += 1
        for rule in self._rules:
            if rule.matches(self.calls):
                self.injected += 1
                raise rule.build()


class FaultyChatClient(ChatClient):
    """Wrap a chat client with a fault schedule.

    Scheduled faults are raised *before* the inner client is invoked,
    so an injected outage burns no inner-model work — exactly like a
    transport-level failure.
    """

    def __init__(self, inner: ChatClient, schedule: FaultSchedule) -> None:
        super().__init__(model_name=inner.model_name)
        self.inner = inner
        self.schedule = schedule

    def complete(self, request: ChatRequest) -> ChatResponse:
        try:
            self.schedule.check()
        except Exception:
            self.stats.errors += 1
            raise
        response = self.inner.complete(request)
        self.stats.record(response.usage)
        return response
