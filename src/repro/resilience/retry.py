"""The one retry loop: exponential backoff, full jitter, Retry-After.

Before this module existed the repo had three divergent retry loops
(``BatchRunner``, ``LLMIndicatorClassifier.classify_image``, and none
at all for street-view fetches).  :class:`RetryPolicy` replaces them:
callers describe *what* is retryable and the policy decides *whether*
and *for how long* to wait, sleeping only through an injected
:class:`~repro.resilience.clock.Clock` and never after the final
attempt.

Backoff follows the AWS "full jitter" scheme — each delay is drawn
uniformly from ``[0, min(max_delay, base * 2**(attempt-1))]`` — with a
floor at the server-provided ``Retry-After`` hint when the error
carries one (``retry_after_s``, as :class:`~repro.llm.errors.RateLimitError`
does).
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..obs.metrics import get_metrics
from .breaker import CircuitBreaker, CircuitOpenError
from .clock import Clock, WallClock


@dataclass
class RetryOutcome:
    """What one retried operation ultimately did.

    ``execute`` never raises for errors it was told about: retryable
    errors are retried until the budget runs out and *give-up* errors
    are captured immediately; both land in :attr:`error`.  Anything
    else (a programming error, an unexpected exception type)
    propagates to the caller.
    """

    value: Any = None
    error: Exception | None = None
    attempts: int = 0
    retries: int = 0
    slept_s: float = 0.0
    breaker_blocked: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def result(self) -> Any:
        """The value, or raise the captured error."""
        if self.error is not None:
            raise self.error
        return self.value


@dataclass
class RetryStats:
    """Aggregate retry accounting across many operations.

    Surfaced on :class:`~repro.core.pipeline.SurveyReport` so a survey
    reports exactly how much fault handling it performed.

    Instances are shared across :class:`~repro.parallel.ParallelExecutor`
    workers, so the read-modify-write updates are guarded by a lock.
    """

    operations: int = 0
    attempts: int = 0
    retries: int = 0
    failures: int = 0
    slept_s: float = 0.0
    breaker_blocks: int = 0
    _lock: threading.Lock = field(
        init=False, repr=False, compare=False, default_factory=threading.Lock
    )

    def absorb(self, outcome: RetryOutcome) -> None:
        with self._lock:
            self.operations += 1
            self.attempts += outcome.attempts
            self.retries += outcome.retries
            self.slept_s += outcome.slept_s
            if outcome.breaker_blocked:
                self.breaker_blocks += 1
            if not outcome.ok:
                self.failures += 1
        # Absorb is the single funnel every retried operation passes
        # through exactly once, so it doubles as the metrics tap; the
        # global books stay reconcilable with any report built by
        # merging RetryStats deltas (see repro.obs.audit).
        metrics = get_metrics()
        metrics.inc("retry.operations")
        metrics.inc("retry.attempts", outcome.attempts)
        metrics.inc("retry.retries", outcome.retries)
        metrics.inc("retry.slept_s", outcome.slept_s)
        if outcome.breaker_blocked:
            metrics.inc("retry.breaker_blocks")
        if not outcome.ok:
            metrics.inc("retry.failures")

    def merge(self, other: "RetryStats") -> None:
        with self._lock:
            self.operations += other.operations
            self.attempts += other.attempts
            self.retries += other.retries
            self.failures += other.failures
            self.slept_s += other.slept_s
            self.breaker_blocks += other.breaker_blocks

    def subtract(self, baseline: "RetryStats") -> "RetryStats":
        """The portion accumulated after ``baseline`` (``self - baseline``).

        Used to carve a shared stats object into per-phase deltas —
        e.g. the survey pipeline's per-classifier accounting and the
        coordinator's "retries spent on locations that ultimately
        failed" remainder.
        """
        with self._lock:
            return RetryStats(
                operations=self.operations - baseline.operations,
                attempts=self.attempts - baseline.attempts,
                retries=self.retries - baseline.retries,
                failures=self.failures - baseline.failures,
                slept_s=self.slept_s - baseline.slept_s,
                breaker_blocks=self.breaker_blocks - baseline.breaker_blocks,
            )

    def as_dict(self) -> dict[str, float]:
        return {
            "operations": self.operations,
            "attempts": self.attempts,
            "retries": self.retries,
            "failures": self.failures,
            "slept_s": round(self.slept_s, 6),
            "breaker_blocks": self.breaker_blocks,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryStats":
        """Rebuild stats persisted via :meth:`as_dict` (checkpoint JSON)."""
        return cls(
            operations=int(data.get("operations", 0)),
            attempts=int(data.get("attempts", 0)),
            retries=int(data.get("retries", 0)),
            failures=int(data.get("failures", 0)),
            slept_s=float(data.get("slept_s", 0.0)),
            breaker_blocks=int(data.get("breaker_blocks", 0)),
        )


@dataclass
class RetryPolicy:
    """Bounded retry with exponential backoff and full jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (≥ 1).
    base_delay_s:
        Backoff scale; the attempt-``k`` delay cap is
        ``base_delay_s * 2**(k-1)``.  Zero disables waiting entirely
        (the classifier's test/bench default).
    max_delay_s:
        Ceiling on any single delay.
    jitter:
        Draw each delay uniformly from ``[0, cap]`` (full jitter).
        With ``False`` the delay is the cap itself — deterministic,
        but synchronizes concurrent retriers.
    seed:
        Seed for the jitter RNG, so fault scripts replay identically.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.5
    max_delay_s: float = 30.0
    jitter: bool = True
    seed: int | None = 0
    _rng: np.random.Generator = field(init=False, repr=False, compare=False)
    _rng_lock: threading.Lock = field(
        init=False, repr=False, compare=False, default_factory=threading.Lock
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------

    def backoff_cap(self, attempt: int) -> float:
        """Upper bound of the delay after attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be positive: {attempt}")
        return min(self.max_delay_s, self.base_delay_s * 2 ** (attempt - 1))

    def delay_for(self, attempt: int, error: Exception | None = None) -> float:
        """Jittered delay after a failed ``attempt``, honoring Retry-After.

        A server-provided ``retry_after_s`` on the error acts as a
        floor: we never knock on the door earlier than asked.
        """
        cap = self.backoff_cap(attempt)
        if self.jitter:
            # The jitter generator is shared by every worker running
            # under this policy; numpy Generators are not thread-safe.
            with self._rng_lock:
                delay = float(self._rng.uniform(0.0, cap))
        else:
            delay = cap
        retry_after = getattr(error, "retry_after_s", None)
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        return delay

    # ------------------------------------------------------------------

    def execute(
        self,
        fn: Callable[[], Any],
        *,
        retryable: tuple[type[Exception], ...],
        giveup: tuple[type[Exception], ...] = (),
        clock: Clock | None = None,
        breaker: CircuitBreaker | None = None,
        stats: RetryStats | None = None,
    ) -> RetryOutcome:
        """Run ``fn`` under this policy; never raises captured errors.

        ``retryable`` errors are retried with backoff until the
        attempt budget is spent (the last one is captured — and, per
        the long-standing classifier bug, **no** backoff is slept
        after the final attempt).  ``giveup`` errors are captured
        without retry.  ``retryable`` wins when an error matches both,
        so e.g. ``giveup=(LLMError,)`` still retries rate limits.

        An open ``breaker`` short-circuits before the first attempt
        with a captured :class:`CircuitOpenError`; outcomes feed the
        breaker so sustained failure opens it.
        """
        clock = clock or WallClock()
        outcome = RetryOutcome()
        for attempt in range(1, self.max_attempts + 1):
            if breaker is not None and not breaker.allow():
                outcome.error = CircuitOpenError(
                    breaker.name, breaker.remaining_open_s()
                )
                outcome.breaker_blocked = True
                break
            outcome.attempts = attempt
            try:
                outcome.value = fn()
                outcome.error = None
                if breaker is not None:
                    breaker.record_success()
                break
            except retryable as err:
                outcome.error = err
                if getattr(err, "retry_after_s", None) is not None:
                    # Duck-typed rate limit: only 429-style errors
                    # carry a server Retry-After hint.  Counting them
                    # here (the one funnel every retried call passes
                    # through) gives the async engine's AIMD
                    # controller its backpressure signal without this
                    # layer importing ``repro.llm``.
                    get_metrics().inc("retry.rate_limited")
                if breaker is not None:
                    breaker.record_failure()
                if attempt < self.max_attempts:
                    delay = self.delay_for(attempt, err)
                    outcome.retries += 1
                    outcome.slept_s += delay
                    clock.sleep(delay)
            except giveup as err:
                outcome.error = err
                if breaker is not None:
                    breaker.record_failure()
                break
        if stats is not None:
            stats.absorb(outcome)
        return outcome
