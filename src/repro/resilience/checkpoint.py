"""Per-location survey progress on disk: resume instead of re-bill.

A survey is an expensive artifact — every fetched image is billed —
so aborting at location 812 of 1,000 must not forfeit the first 811.
:class:`SurveyCheckpoint` persists one JSON document (following the
:mod:`repro.gsv.storage` conventions: a versioned manifest written
atomically) keyed by the survey's identity; a rerun with the same
identity skips every completed location.

The payload stored per location is an opaque JSON dict owned by the
caller (:class:`~repro.core.pipeline.NeighborhoodDecoder` stores the
decoded indicators plus billing provenance), which keeps this module
free of pipeline imports.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..obs.metrics import get_metrics

FORMAT_VERSION = 1


class CheckpointMismatchError(ValueError):
    """The checkpoint on disk belongs to a different survey."""


class SurveyCheckpoint:
    """Append-mostly per-location progress store.

    Parameters
    ----------
    path:
        The JSON file.  Parent directories are created on first save.
    key:
        The survey's identity (county, n_locations, seed, ...).  A
        file whose key differs raises :class:`CheckpointMismatchError`
        instead of silently mixing two surveys' billing.
    """

    def __init__(self, path: str | Path, key: dict) -> None:
        self.path = Path(path)
        self.key = {k: key[k] for k in sorted(key)}
        self._records: dict[int, dict] = {}
        if self.path.exists():
            self._load()

    # ------------------------------------------------------------------

    def _load(self) -> None:
        payload = json.loads(self.path.read_text())
        version = payload.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format version: {version!r}"
            )
        stored_key = payload.get("key", {})
        if stored_key != self.key:
            raise CheckpointMismatchError(
                f"checkpoint at {self.path} is for survey {stored_key!r}, "
                f"not {self.key!r}"
            )
        self._records = {
            int(index): record
            for index, record in payload.get("locations", {}).items()
        }

    def save(self) -> None:
        """Write atomically (temp file + rename), like a real pipeline."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format_version": FORMAT_VERSION,
            "key": self.key,
            "locations": {
                str(index): record
                for index, record in sorted(self._records.items())
            },
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(self.path)
        get_metrics().inc("checkpoint.writes")

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def has(self, index: int) -> bool:
        return index in self._records

    def get(self, index: int) -> dict:
        return self._records[index]

    @property
    def completed_indices(self) -> tuple[int, ...]:
        return tuple(sorted(self._records))

    def record(self, index: int, payload: dict) -> None:
        """Store one completed location and persist immediately.

        Persisting per location (not per survey) is the point: a crash
        between locations loses at most the in-flight location.
        """
        self._records[index] = payload
        self.save()
