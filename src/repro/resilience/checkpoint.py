"""Per-location survey progress on disk: resume instead of re-bill.

A survey is an expensive artifact — every fetched image is billed —
so aborting at location 812 of 1,000 must not forfeit the first 811.
:class:`SurveyCheckpoint` persists one JSON document (following the
:mod:`repro.gsv.storage` conventions: a versioned manifest written
atomically) keyed by the survey's identity; a rerun with the same
identity skips every completed location.

Crash safety: every save goes through a temp-file-then-rename, so the
file on disk is always the *last complete* document — a worker killed
mid-write (SIGKILL, OOM, power on the same host) leaves either the
previous checkpoint or the new one, never a torn page.  Loading is
belt-and-braces anyway: a document that fails to parse, fails its
checksum, or has a mangled structure is **quarantined as corrupt**
(renamed to ``<path>.corrupt``, counted on the
``checkpoint.corrupt`` metric) and treated as a cold start instead of
raising — losing a checkpoint must cost a re-fetch, not wedge the
survey.  A checkpoint whose *key* identifies a different survey is
still a hard :class:`CheckpointMismatchError`: silently mixing two
surveys' billing is worse than failing loudly.

The payload stored per location is an opaque JSON dict owned by the
caller (:class:`~repro.core.pipeline.NeighborhoodDecoder` stores the
decoded indicators plus billing/retry provenance), which keeps this
module free of pipeline imports.

Per-record saves deliberately do **not** fsync: the rename already
survives process death (page cache persists), and a whole-machine
crash merely re-fetches the tail of one shard.  Rare, high-value
documents (the coordinator's shard manifest and shard results) do
fsync — see :mod:`repro.coordinator.manifest`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from ..obs.metrics import get_metrics

#: Version 2 adds the ``checksum`` field; version-1 documents (no
#: checksum) still load so pre-existing checkpoints keep their value.
FORMAT_VERSION = 2


class CheckpointMismatchError(ValueError):
    """The checkpoint on disk belongs to a different survey."""


def _checksum(key: dict, locations: dict) -> str:
    """Content checksum over the canonical serialization of the body."""
    body = json.dumps(
        {"key": key, "locations": locations}, sort_keys=True
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


class SurveyCheckpoint:
    """Append-mostly per-location progress store.

    Parameters
    ----------
    path:
        The JSON file.  Parent directories are created on first save.
    key:
        The survey's identity (county, n_locations, seed, ...).  A
        file whose key differs raises :class:`CheckpointMismatchError`
        instead of silently mixing two surveys' billing.
    """

    def __init__(self, path: str | Path, key: dict) -> None:
        self.path = Path(path)
        self.key = {k: key[k] for k in sorted(key)}
        self._records: dict[int, dict] = {}
        if self.path.exists():
            self._load()

    # ------------------------------------------------------------------

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError, UnicodeDecodeError):
            # Truncated or garbled mid-write — cold start, not a crash.
            self._quarantine_corrupt("unparseable JSON")
            return
        if not isinstance(payload, dict):
            self._quarantine_corrupt("not a JSON object")
            return
        version = payload.get("format_version")
        if version not in (1, FORMAT_VERSION):
            raise ValueError(
                f"unsupported checkpoint format version: {version!r}"
            )
        stored_key = payload.get("key", {})
        locations = payload.get("locations", {})
        if not isinstance(stored_key, dict) or not isinstance(
            locations, dict
        ):
            self._quarantine_corrupt("mangled structure")
            return
        if version == FORMAT_VERSION and payload.get(
            "checksum"
        ) != _checksum(stored_key, locations):
            self._quarantine_corrupt("checksum mismatch")
            return
        if stored_key != self.key:
            raise CheckpointMismatchError(
                f"checkpoint at {self.path} is for survey {stored_key!r}, "
                f"not {self.key!r}"
            )
        try:
            self._records = {
                int(index): record
                for index, record in locations.items()
            }
        except (TypeError, ValueError):
            self._quarantine_corrupt("non-integer location index")

    def _quarantine_corrupt(self, reason: str) -> None:
        """Count, preserve, and forget a corrupt checkpoint document.

        The damaged file is renamed to ``<path>.corrupt`` for
        forensics (a later save recreates the real path), the
        ``checkpoint.corrupt`` counter moves so dashboards see the
        event, and the store cold-starts.
        """
        get_metrics().inc("checkpoint.corrupt")
        try:
            self.path.replace(
                self.path.with_suffix(self.path.suffix + ".corrupt")
            )
        except OSError:  # pragma: no cover - best effort only
            pass
        self._records = {}

    def save(self) -> None:
        """Write atomically (temp file + rename), like a real pipeline."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        key = self.key
        locations = {
            str(index): record
            for index, record in sorted(self._records.items())
        }
        payload = {
            "format_version": FORMAT_VERSION,
            "key": key,
            "locations": locations,
            "checksum": _checksum(key, locations),
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(self.path)
        get_metrics().inc("checkpoint.writes")

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def has(self, index: int) -> bool:
        return index in self._records

    def get(self, index: int) -> dict:
        return self._records[index]

    @property
    def completed_indices(self) -> tuple[int, ...]:
        return tuple(sorted(self._records))

    def record(self, index: int, payload: dict) -> None:
        """Store one completed location and persist immediately.

        Persisting per location (not per survey) is the point: a crash
        between locations loses at most the in-flight location.
        """
        self._records[index] = payload
        self.save()
