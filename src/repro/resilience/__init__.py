"""Unified resilience layer for every I/O edge of the pipeline.

The paper's §V names API cost, latency, and multi-LLM coordination as
the practical barriers to scaling neighborhood decoding; production
GSV pipelines (Tang et al.) make robustness the central requirement.
This package is the single home for the machinery that turns transient
faults into bounded delays instead of aborted (and already billed)
surveys:

* :mod:`~repro.resilience.clock` — the pluggable time source.  Only
  this module may call ``time.sleep``; everything else sleeps through
  an injected clock so fault scripts replay deterministically.
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy`, the one
  retry loop (exponential backoff, full jitter, ``Retry-After``
  awareness) shared by the batch runner, the classifier, and the
  street-view fetch path.
* :mod:`~repro.resilience.breaker` — per-endpoint
  :class:`CircuitBreaker` (closed → open → half-open) so a hard-down
  model or GSV key stops burning attempts and fees.
* :mod:`~repro.resilience.faults` — deterministic fault injection
  (:class:`FaultSchedule`, :class:`FaultyChatClient`) for replayable
  outage scripts: bursts, sustained rate limiting, quota cliffs.
* :mod:`~repro.resilience.checkpoint` — :class:`SurveyCheckpoint`,
  per-location survey progress on disk so a rerun resumes after the
  last completed location instead of re-billing fetched imagery.
"""

from .breaker import CircuitBreaker, CircuitOpenError, CircuitState
from .checkpoint import CheckpointMismatchError, SurveyCheckpoint
from .clock import Clock, VirtualClock, WallClock
from .faults import FaultRule, FaultSchedule, FaultyChatClient
from .retry import RetryOutcome, RetryPolicy, RetryStats

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "CircuitState",
    "CheckpointMismatchError",
    "SurveyCheckpoint",
    "Clock",
    "VirtualClock",
    "WallClock",
    "FaultRule",
    "FaultSchedule",
    "FaultyChatClient",
    "RetryOutcome",
    "RetryPolicy",
    "RetryStats",
]
