"""Per-endpoint circuit breaker: closed → open → half-open.

When a simulated model or GSV key is hard-down, retrying every request
burns the full attempt budget (and, for billed endpoints, fees) on an
endpoint that cannot answer.  A :class:`CircuitBreaker` counts
consecutive failures; at the threshold it *opens* and rejects calls
instantly for ``recovery_time_s``, then *half-opens* to let a single
probe through — success closes the circuit, failure re-opens it.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

from ..obs.metrics import get_metrics
from .clock import Clock, WallClock


class CircuitState(enum.Enum):
    """Lifecycle of a circuit breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitOpenError(Exception):
    """The call was rejected because the circuit is open."""

    def __init__(self, endpoint: str, remaining_s: float = 0.0) -> None:
        super().__init__(
            f"circuit for {endpoint!r} is open "
            f"({remaining_s:.1f}s until half-open probe)"
        )
        self.endpoint = endpoint
        self.remaining_s = remaining_s


@dataclass
class CircuitBreaker:
    """Trip after ``failure_threshold`` consecutive failures.

    Callers ask :meth:`allow` before attempting and report the result
    via :meth:`record_success` / :meth:`record_failure`;
    :meth:`~repro.resilience.retry.RetryPolicy.execute` does all three
    automatically when handed a breaker.

    One breaker is shared by every worker hitting its endpoint, so all
    state transitions run under a reentrant lock (``state`` itself may
    transition open → half-open inside ``record_failure``).
    """

    name: str = "endpoint"
    failure_threshold: int = 5
    recovery_time_s: float = 30.0
    clock: Clock = field(default_factory=WallClock)
    _state: CircuitState = field(default=CircuitState.CLOSED, init=False)
    _consecutive_failures: int = field(default=0, init=False)
    _opened_at: float = field(default=0.0, init=False)
    opens: int = field(default=0, init=False)
    _lock: threading.RLock = field(
        init=False, repr=False, compare=False, default_factory=threading.RLock
    )

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.recovery_time_s < 0:
            raise ValueError("recovery_time_s must be non-negative")

    @property
    def state(self) -> CircuitState:
        """Current state, promoting open → half-open when recovery elapses."""
        with self._lock:
            if (
                self._state is CircuitState.OPEN
                and self.clock.now() - self._opened_at >= self.recovery_time_s
            ):
                self._state = CircuitState.HALF_OPEN
            return self._state

    def remaining_open_s(self) -> float:
        """Seconds until the next half-open probe (0 unless open)."""
        with self._lock:
            if self.state is not CircuitState.OPEN:
                return 0.0
            elapsed = self.clock.now() - self._opened_at
            return max(0.0, self.recovery_time_s - elapsed)

    def allow(self) -> bool:
        """May a call proceed right now?

        Closed and half-open circuits admit calls (half-open admits
        the recovery probe); open circuits reject instantly.
        """
        return self.state is not CircuitState.OPEN

    def raise_if_open(self) -> None:
        if not self.allow():
            raise CircuitOpenError(self.name, self.remaining_open_s())

    def record_success(self) -> None:
        """A call succeeded: close the circuit and reset the count."""
        with self._lock:
            self._consecutive_failures = 0
            self._state = CircuitState.CLOSED

    def record_failure(self) -> None:
        """A call failed: trip at the threshold, re-open a failed probe."""
        with self._lock:
            self._consecutive_failures += 1
            if self.state is CircuitState.HALF_OPEN:
                self._trip()
            elif (
                self._state is CircuitState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        self._state = CircuitState.OPEN
        self._opened_at = self.clock.now()
        self.opens += 1
        get_metrics().inc("breaker.trips")
