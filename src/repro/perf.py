"""Timing utilities and the ``BENCH_*.json`` trajectory writer.

Perf work is only real when it is measured, and only comparable when
every measurement records where it ran.  This module provides the
small kit the perf benchmarks share:

* :class:`Stopwatch` — a wall-clock context manager;
* :class:`LatencyChatClient` — wraps any chat client with simulated
  network round-trip latency (the commercial APIs the paper drives
  answer in hundreds of milliseconds; the simulated ones answer in
  microseconds, which would make concurrency look useless);
* :func:`machine_info` / :func:`git_sha` — provenance stamped into
  every benchmark artifact;
* :func:`write_bench` — atomic (temp file + rename) writer for
  ``BENCH_<name>.json`` so the perf trajectory is comparable across
  PRs and survives an interrupted run.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from .llm.base import ChatClient, ChatRequest, ChatResponse
from .parallel import effective_cpu_count, shared_memory_support
from .resilience.clock import Clock, WallClock

__all__ = [
    "HEADLINE_METRICS",
    "LatencyChatClient",
    "Stopwatch",
    "compare_benchmarks",
    "git_sha",
    "machine_info",
    "write_bench",
]


class Stopwatch:
    """Measure a wall-clock interval: ``with Stopwatch() as sw: ...``."""

    def __init__(self) -> None:
        self.elapsed_s = 0.0
        self._started: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._started is not None
        self.elapsed_s = time.perf_counter() - self._started
        self._started = None


class LatencyChatClient(ChatClient):
    """Add a fixed per-request latency in front of an inner client.

    The sleep goes through an injected
    :class:`~repro.resilience.clock.Clock`, so fault scripts can keep
    using a virtual clock while perf benchmarks use wall time (which
    releases the GIL, exactly like a real socket wait).
    """

    def __init__(
        self,
        inner: ChatClient,
        latency_s: float,
        clock: Clock | None = None,
    ) -> None:
        if latency_s < 0:
            raise ValueError(f"latency must be non-negative: {latency_s}")
        super().__init__(model_name=inner.model_name)
        self.inner = inner
        self.latency_s = latency_s
        self.clock = clock or WallClock()

    def complete(self, request: ChatRequest) -> ChatResponse:
        if self.latency_s > 0:
            self.clock.sleep(self.latency_s)
        response = self.inner.complete(request)
        self.stats.record(response.usage)
        return response

    def complete_batch(
        self, requests: Sequence[ChatRequest]
    ) -> list[ChatResponse]:
        """One latency charge for the whole window, like a real batched
        endpoint: the round-trip is paid once and amortized across every
        request in it — the behaviour the micro-batching benchmark
        measures."""
        if self.latency_s > 0 and requests:
            self.clock.sleep(self.latency_s)
        responses = [self.inner.complete(request) for request in requests]
        for response in responses:
            self.stats.record(response.usage)
        return responses


def machine_info() -> dict:
    """Where a benchmark ran — enough to judge cross-run comparability.

    ``cpu_count`` is the *usable* count — affinity/cgroup aware via
    :func:`repro.parallel.effective_cpu_count` — because that is what
    bounds any measured speedup.  The raw logical count is kept
    alongside for context (containers routinely report many logical
    CPUs while pinning the process to a fraction of them).

    ``shared_memory`` records whether the process backend's zero-copy
    array transport is available; when it is not, the recorded reason
    documents that every process-backend measurement in the artifact
    paid pickle transport instead.
    """
    shm_cls, shm_reason = shared_memory_support()
    shm_status: dict = {"available": shm_cls is not None}
    if shm_reason is not None:
        shm_status["fallback_reason"] = shm_reason
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": effective_cpu_count(),
        "cpu_count_logical": os.cpu_count(),
        "numpy": np.__version__,
        "shared_memory": shm_status,
    }


#: The metrics ``repro bench --compare`` guards, per benchmark name.
#: Every entry is a dotted path into the benchmark document; most are
#: higher-is-better ratios (speedups, rates, throughputs) so "regressed"
#: usually means "dropped".  An entry with ``lower_is_better: True``
#: inverts the direction (error deltas, latencies); its optional
#: ``floor`` sets the smallest baseline magnitude used as the relative
#: denominator, so near-zero baselines don't turn measurement noise
#: into a reported regression.  ``waived_by`` names a boolean path
#: that, when true in *either* document, exempts the metric — the
#: recorded honesty flags (e.g. ``core_capped`` on single-core hosts)
#: mark numbers the machine cannot physically improve.
HEADLINE_METRICS: dict[str, list[dict]] = {
    "cascade": [
        {"path": "cascade.fee_reduction"},
        {"path": "cascade.f1_retention"},
    ],
    "pipeline": [
        {"path": "survey.speedup"},
        {"path": "llm_cache.warm_speedup"},
    ],
    "async": [
        {"path": "pipeline.async_speedup"},
        {"path": "pipeline.async_peak_inflight"},
    ],
    "detect": [
        {
            "path": "process_parallel.speedup",
            "waived_by": "process_parallel.core_capped",
        },
        {"path": "artifact_cache.warm_speedup"},
        {"path": "detect.extract_speedup"},
        {"path": "detect.int8_speedup"},
        {
            "path": "detect.int8_f1_delta",
            "lower_is_better": True,
            "floor": 0.005,
        },
    ],
    "stream": [
        {
            "path": "transport.shm_speedup",
            "waived_by": "transport.core_capped",
        },
        {"path": "streaming.stream_locations_per_s"},
        {"path": "coalescing.hit_rate"},
    ],
    "obs": [
        {"path": "tracing.noop_locations_per_s"},
        {"path": "tracing.traced_relative_throughput"},
    ],
    "coord": [
        {"path": "coordinator.locations_per_s"},
        {
            "path": "coordinator.relative_throughput",
            "waived_by": "coordinator.core_capped",
        },
    ],
    "service": [
        {"path": "service.job_throughput"},
        {
            "path": "service.multiplex_overhead",
            "lower_is_better": True,
            "floor": 0.25,
        },
    ],
}


def _lookup(document: dict, dotted: str):
    value = document
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def compare_benchmarks(
    fresh: dict, baseline: dict, threshold: float = 0.20
) -> dict:
    """Diff two benchmark documents over their headline metrics.

    Returns ``{"bench", "compared", "waived", "missing", "regressions"}``
    where ``regressions`` lists every headline metric that dropped by
    more than ``threshold`` (relative) against the baseline.  A metric
    absent from either document is reported in ``missing`` rather than
    failing the comparison — old trajectory entries predate newer
    metrics.  Pure function: the CLI turns a non-empty ``regressions``
    into a non-zero exit.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive: {threshold}")
    name = fresh.get("bench")
    result: dict = {
        "bench": name,
        "compared": [],
        "waived": [],
        "missing": [],
        "regressions": [],
    }
    if baseline.get("bench") != name:
        raise ValueError(
            f"benchmark mismatch: fresh is {name!r}, "
            f"baseline is {baseline.get('bench')!r}"
        )
    for spec in HEADLINE_METRICS.get(name, []):
        path = spec["path"]
        waiver = spec.get("waived_by")
        if waiver is not None and (
            _lookup(fresh, waiver) or _lookup(baseline, waiver)
        ):
            result["waived"].append(path)
            continue
        new = _lookup(fresh, path)
        old = _lookup(baseline, path)
        if not isinstance(new, (int, float)) or not isinstance(
            old, (int, float)
        ):
            result["missing"].append(path)
            continue
        entry = {"path": path, "baseline": old, "fresh": new}
        result["compared"].append(entry)
        if spec.get("lower_is_better"):
            # A *rise* regresses.  The denominator is floored so a
            # near-perfect baseline (e.g. an F1 delta of 1e-4) does
            # not make any nonzero fresh value look like a blow-up.
            denominator = max(abs(old), float(spec.get("floor", 0.0)))
            if denominator > 0:
                rise = (new - old) / denominator
                entry["relative_change"] = round(rise, 4)
                if rise > threshold:
                    result["regressions"].append(entry)
        elif old > 0:
            drop = (old - new) / old
            entry["relative_change"] = round(-drop, 4)
            if drop > threshold:
                result["regressions"].append(entry)
    return result


def git_sha(repo_root: str | Path | None = None) -> str:
    """The current commit, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root) if repo_root else None,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def write_bench(
    path: str | Path, name: str, payload: dict, repo_root: str | Path | None = None
) -> dict:
    """Write one benchmark document atomically; returns what was written.

    The document wraps ``payload`` with the benchmark name, a
    timestamp, the running machine, and the git SHA, making every
    ``BENCH_*.json`` self-describing and trajectory-comparable.
    """
    path = Path(path)
    document = {
        "bench": name,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": git_sha(repo_root if repo_root is not None else path.parent),
        "machine": machine_info(),
        **payload,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    tmp.replace(path)
    return document
