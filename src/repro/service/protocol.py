"""NDJSON wire protocol for the survey daemon (unix socket or stdio).

One JSON object per line in, one (or, for ``watch``, several) per line
out — the same newline-delimited idiom as the sinks' session journal,
so a client is ``socat`` or a ten-line script, not an SDK.  Requests::

    {"op": "submit", "spec": {"tenant": "acme", "n_locations": 4}}
    {"op": "status", "job_id": "job-0000"}
    {"op": "watch",  "job_id": "job-0000"}      # streams events
    {"op": "result", "job_id": "job-0000"}
    {"op": "cancel", "job_id": "job-0000"}
    {"op": "budget", "tenant": "acme", "grant_usd": 0.5}
    {"op": "jobs"} | {"op": "ping"} | {"op": "shutdown"}

Responses carry ``{"ok": true, ...}`` or ``{"ok": false, "error":
"<ExceptionType>", "message": "..."}``; admission failures (quota,
budget, backpressure) are *responses*, not connection errors — a
client that over-submits keeps its session.

:func:`run_selftest` is the deterministic end-to-end drill behind
``repro serve --selftest``: a three-job, two-tenant session against a
temporary state directory, with every DONE report byte-compared to a
standalone engine run — the CI smoke for the whole service layer.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import sys
import tempfile
from pathlib import Path

from .daemon import SurveyService
from .jobs import JobSpec, ServiceError
from .stack import ServiceStack

__all__ = ["ServiceProtocol", "run_selftest"]


class ServiceProtocol:
    """Serve one :class:`SurveyService` over NDJSON streams."""

    def __init__(self, service: SurveyService) -> None:
        self.service = service
        self._shutdown = asyncio.Event()

    # -- request handling ----------------------------------------------

    async def handle_request(self, request: dict) -> list[dict]:
        """Answer one decoded request (non-streaming ops)."""
        op = request.get("op")
        try:
            if op == "ping":
                return [{"ok": True, "op": "ping"}]
            if op == "submit":
                spec = JobSpec.from_dict(request.get("spec", {}))
                job_id = await self.service.submit(spec)
                return [{"ok": True, "job_id": job_id}]
            if op == "status":
                record = await self.service.status(request["job_id"])
                return [{"ok": True, "job": record.to_dict()}]
            if op == "result":
                report = await self.service.result(request["job_id"])
                return [{"ok": True, "report": report}]
            if op == "cancel":
                accepted = await self.service.cancel(request["job_id"])
                return [{"ok": True, "accepted": accepted}]
            if op == "jobs":
                return [
                    {
                        "ok": True,
                        "jobs": [r.to_dict() for r in self.service.jobs()],
                    }
                ]
            if op == "budget":
                books = await self.service.grant_budget(
                    request["tenant"], float(request.get("grant_usd", 0.0))
                )
                return [{"ok": True, "ledger": books}]
            if op == "shutdown":
                self._shutdown.set()
                return [{"ok": True, "op": "shutdown"}]
            return [
                {
                    "ok": False,
                    "error": "UnknownOp",
                    "message": f"unknown op {op!r}",
                }
            ]
        except (ServiceError, KeyError, TypeError, ValueError) as err:
            return [
                {
                    "ok": False,
                    "error": type(err).__name__,
                    "message": str(err),
                }
            ]

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    return
                text = line.decode("utf-8").strip()
                if not text:
                    continue
                try:
                    request = json.loads(text)
                except ValueError as err:
                    await self._send(
                        writer,
                        {
                            "ok": False,
                            "error": "BadRequest",
                            "message": f"not JSON: {err}",
                        },
                    )
                    continue
                if request.get("op") == "watch":
                    await self._stream_watch(writer, request)
                    continue
                for response in await self.handle_request(request):
                    await self._send(writer, response)
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _stream_watch(
        self, writer: asyncio.StreamWriter, request: dict
    ) -> None:
        try:
            async for event in self.service.watch(request["job_id"]):
                await self._send(writer, {"ok": True, "event": event})
        except (ServiceError, KeyError) as err:
            await self._send(
                writer,
                {
                    "ok": False,
                    "error": type(err).__name__,
                    "message": str(err),
                },
            )

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        )
        await writer.drain()

    # -- servers --------------------------------------------------------

    async def serve_unix(self, socket_path: str | Path) -> None:
        """Accept NDJSON sessions on a unix socket until ``shutdown``."""
        await self.service.start()
        server = await asyncio.start_unix_server(
            self.handle_connection, path=str(socket_path)
        )
        async with server:
            await self._shutdown.wait()
        await self.service.drain()
        await self.service.stop()

    async def serve_stdio(self) -> None:
        """One NDJSON session over stdin/stdout (the ``--stdio`` mode)."""
        await self.service.start()
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader()
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
        )
        transport, proto = await loop.connect_write_pipe(
            asyncio.streams.FlowControlMixin, sys.stdout
        )
        writer = asyncio.StreamWriter(transport, proto, reader, loop)
        await self.handle_connection(reader, writer)
        await self.service.drain()
        await self.service.stop()


def run_selftest(state_dir: str | Path | None = None) -> int:
    """Deterministic end-to-end service drill; 0 on success.

    Three jobs, two tenants, one shared stack: a priority-2 survey, a
    default-priority survey for a second tenant, and an aggregate
    classify job — drained serially, then audited: every job DONE,
    every DONE survey report byte-identical to a standalone
    ``survey_async`` run with the same parameters against a fresh
    stack, every settlement equal to the canonical checkpoint fee, and
    every tenant ledger non-negative.  Prints one line per check.
    """

    async def drill(root: Path) -> int:
        failures: list[str] = []
        specs = [
            JobSpec(tenant="acme", kind="survey", county_seed=3,
                    n_locations=3, seed=11, priority=2),
            JobSpec(tenant="beta", kind="survey", county_seed=5,
                    n_locations=2, seed=7),
            JobSpec(tenant="acme", kind="classify", county_seed=3,
                    n_locations=3, seed=19),
        ]
        async with SurveyService(
            ServiceStack(), root / "state"
        ) as service:
            ids = [await service.submit(spec) for spec in specs]
            ran = await service.run_until_idle()
            if ran != len(specs):
                failures.append(f"ran {ran} of {len(specs)} jobs")
            for job_id in ids:
                record = await service.status(job_id)
                if record.state.value != "done":
                    failures.append(
                        f"{job_id}: {record.state.value} "
                        f"({record.error})"
                    )
                books = service.observability.get(job_id, {})
                for finding in books.get("reconcile", []):
                    failures.append(f"{job_id}: reconcile: {finding}")
                for finding in books.get("audit_trace", []):
                    failures.append(f"{job_id}: trace: {finding}")
            served = {
                job_id: await service.result(job_id) for job_id in ids
            }
            for tenant in ("acme", "beta"):
                books = service.ledger_snapshot(tenant)
                if books["settled_usd"] < 0 or books["reserved_usd"] != 0:
                    failures.append(f"{tenant}: bad ledger {books}")

        # Byte-compare the survey jobs against standalone engine runs
        # on a fresh stack (the multiplexing-changes-nothing contract).
        for spec, job_id in zip(specs, ids):
            if spec.kind != "survey" or served.get(job_id) is None:
                continue
            with ServiceStack() as fresh:
                report = await fresh.decoder(
                    spec.kind, spec.county_seed
                ).survey_async(
                    fresh.county(spec.county_seed),
                    spec.n_locations,
                    seed=spec.seed,
                    max_inflight=spec.max_inflight,
                )
            if json.dumps(served[job_id], sort_keys=True) != (
                report.to_json()
            ):
                failures.append(f"{job_id}: report differs from standalone")
        for line in failures:
            print(f"FAIL {line}")
        print(
            f"service selftest: {len(specs)} jobs, "
            f"{len(failures)} failures"
        )
        return 1 if failures else 0

    if state_dir is not None:
        return asyncio.run(drill(Path(state_dir)))
    with tempfile.TemporaryDirectory(prefix="repro-service-") as tmp:
        return asyncio.run(drill(Path(tmp)))
