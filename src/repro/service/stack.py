"""The service's shared client stack: one of everything, closed once.

Every job the daemon runs shares a single set of expensive resources —
the elspeth ``ExperimentSuiteRunner`` shape from SNIPPETS.md applied to
this codebase's clients:

* one simulated-VLM client set behind **one**
  :class:`~repro.llm.cache.CachingChatClient` (shared response cache +
  single-flight coalescing across jobs, optionally journaled to disk);
* an optional shared :class:`~repro.llm.batch.TokenBucket` in front of
  the LLM (one rate limit for the whole daemon, not per job);
* one shared :class:`~repro.resilience.breaker.CircuitBreaker` on the
  street-view endpoint;
* one shared :class:`~repro.gsv.api.UsageMeter`: every per-county
  street-view client is constructed over the *same* meter dict, so all
  imagery fees land in one bill however many synthetic counties jobs
  touch;
* one :class:`~repro.parallel.aio.ThreadBridge` lent to every engine
  run, so jobs reuse a warm thread pool instead of spinning one up
  each (the ``service.multiplex_overhead`` benchmark's main lever).

Decoders are built lazily per ``(profile, county_seed)`` and reuse the
shared pieces, so a job's report is byte-identical to a standalone
``survey_async`` run against a fresh stack with the same parameters —
the golden service-session test's contract.

Because the journal-backed cache's ``__del__`` is otherwise the only
close path in a long-lived daemon, the stack is an explicit resource:
``close()`` (or a ``with`` block) flushes and releases the cache
journal and shuts the thread bridge down; the daemon closes its stack
on exit.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Sequence

from ..core.classifier import LLMIndicatorClassifier
from ..core.pipeline import NeighborhoodDecoder
from ..geo.county import County, make_durham_like
from ..gsv.api import StreetViewClient, UsageMeter
from ..gsv.dataset import build_survey_dataset
from ..llm.base import ChatClient, ChatRequest, ChatResponse
from ..llm.batch import TokenBucket
from ..llm.cache import CachingChatClient
from ..llm.paper_targets import GEMINI_15_PRO
from ..llm.registry import build_clients
from ..parallel.aio import ThreadBridge
from ..resilience.breaker import CircuitBreaker
from ..resilience.clock import Clock, WallClock
from ..resilience.faults import FaultSchedule
from .jobs import ServiceError

__all__ = ["RateLimitedChatClient", "ServiceStack"]

#: Widest per-job pipeline window the shared bridge is sized for.
MAX_JOB_INFLIGHT = 16


class RateLimitedChatClient(ChatClient):
    """Gate an inner client behind a shared token bucket.

    The bucket is daemon-wide: concurrent jobs' classify calls all
    draw from the same allowance, which is the whole point of running
    them behind one service instead of N standalone scripts.
    """

    def __init__(self, inner: ChatClient, bucket: TokenBucket) -> None:
        super().__init__(model_name=inner.model_name)
        self.inner = inner
        self.bucket = bucket

    def complete(self, request: ChatRequest) -> ChatResponse:
        self.bucket.acquire()
        response = self.inner.complete(request)
        self.stats.record(response.usage)
        return response

    def complete_batch(
        self, requests: Sequence[ChatRequest]
    ) -> list[ChatResponse]:
        # One token per request — a batch is cheaper in latency, not
        # in provider quota.
        for _ in requests:
            self.bucket.acquire()
        responses = self.inner.complete_batch(requests)
        for response in responses:
            self.stats.record(response.usage)
        return responses


class ServiceStack:
    """Shared clients, limiter, breaker, meter, and lazy decoders."""

    def __init__(
        self,
        *,
        api_key: str = "service",
        model_id: str = GEMINI_15_PRO,
        clients: dict[str, ChatClient] | None = None,
        calibration_seed: int = 77,
        cache_path: str | Path | None = None,
        clock: Clock | None = None,
        gsv_latency_s: float = 0.0,
        gsv_failure_rate: float = 0.0,
        fault_schedule: FaultSchedule | None = None,
        rate_limit_per_s: float | None = None,
        rate_limit_burst: float = 8.0,
        breaker: CircuitBreaker | None = None,
        cascade_builder: Callable[[], object] | None = None,
    ) -> None:
        self.api_key = api_key
        self.model_id = model_id
        self.clock: Clock = clock or WallClock()
        self.gsv_latency_s = gsv_latency_s
        self.gsv_failure_rate = gsv_failure_rate
        self.fault_schedule = fault_schedule
        self._calibration_seed = calibration_seed
        self._raw_clients = clients
        self._cache_path = Path(cache_path) if cache_path else None
        self._cascade_builder = cascade_builder
        self.breaker = breaker or CircuitBreaker(
            name="gsv", clock=self.clock
        )
        self.limiter: TokenBucket | None = (
            TokenBucket(
                rate=rate_limit_per_s,
                capacity=rate_limit_burst,
                clock=self.clock,
            )
            if rate_limit_per_s
            else None
        )
        #: One meter dict shared by every per-county street-view client:
        #: the daemon's single bill.
        self._meters: dict[str, UsageMeter] = {}
        self.bridge = ThreadBridge(max_threads=MAX_JOB_INFLIGHT)
        self._counties: dict[int, County] = {}
        self._street_views: dict[int, StreetViewClient] = {}
        self._chat_client: CachingChatClient | None = None
        self._decoders: dict[tuple[str, int], NeighborhoodDecoder] = {}
        self._cascade = None
        self._closed = False

    # -- shared pieces --------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def usage(self) -> UsageMeter:
        """The daemon-wide usage meter (all counties, one bill)."""
        return self._meters.setdefault(self.api_key, UsageMeter())

    def county(self, seed: int) -> County:
        if seed not in self._counties:
            self._counties[seed] = make_durham_like(seed=seed)
        return self._counties[seed]

    def street_view(self, county_seed: int) -> StreetViewClient:
        """Per-county-seed client over the shared meter dict.

        Synthetic counties from different seeds share one bounding box,
        so one client cannot tell them apart; per-seed clients with an
        injected common ``_meters`` dict keep fetches unambiguous while
        the fee accounting stays a single shared meter.
        """
        if county_seed not in self._street_views:
            self._street_views[county_seed] = StreetViewClient(
                counties=[self.county(county_seed)],
                api_key=self.api_key,
                failure_rate=self.gsv_failure_rate,
                fault_schedule=self.fault_schedule,
                latency_s=self.gsv_latency_s,
                clock=self.clock,
                _meters=self._meters,
            )
        return self._street_views[county_seed]

    def chat_client(self) -> CachingChatClient:
        """The shared (cached, optionally rate-limited) LLM client."""
        self._require_open()
        if self._chat_client is None:
            raw = self._raw_clients
            if raw is None:
                calibration = build_survey_dataset(
                    n_images=60, size=256, seed=self._calibration_seed
                )
                raw = build_clients(
                    [image.scene for image in calibration],
                    model_ids=(self.model_id,),
                )
            inner: ChatClient = raw[self.model_id]
            if self.limiter is not None:
                inner = RateLimitedChatClient(inner, self.limiter)
            self._chat_client = CachingChatClient(
                inner, cache_path=self._cache_path
            )
        return self._chat_client

    # -- decoders -------------------------------------------------------

    def decoder(self, kind: str, county_seed: int) -> NeighborhoodDecoder:
        """The decoder a job of ``kind`` in ``county_seed`` runs on.

        ``survey`` and ``classify`` share the single-classifier decoder
        (they differ only in which engine method the daemon calls);
        ``cascade`` routes through the cost-aware cascade instead.
        """
        self._require_open()
        profile = "cascade" if kind == "cascade" else "llm"
        cache_key = (profile, county_seed)
        if cache_key not in self._decoders:
            street_view = self.street_view(county_seed)
            if profile == "cascade":
                self._decoders[cache_key] = NeighborhoodDecoder(
                    street_view=street_view,
                    cascade=self._build_cascade(),
                    gsv_breaker=self.breaker,
                    clock=self.clock,
                )
            else:
                self._decoders[cache_key] = NeighborhoodDecoder(
                    street_view=street_view,
                    classifier=LLMIndicatorClassifier(self.chat_client()),
                    gsv_breaker=self.breaker,
                    clock=self.clock,
                )
        return self._decoders[cache_key]

    def _build_cascade(self):
        if self._cascade is None:
            builder = self._cascade_builder or self._default_cascade
            self._cascade = builder()
        return self._cascade

    def _default_cascade(self):
        """Train-and-wire the shipped three-tier cascade, lazily.

        Deliberately deferred to first cascade job: detector training
        is the expensive part of the stack, and most deployments only
        run survey/classify jobs.  Tier fees are booked on the shared
        usage meter, so cascade jobs land on the same daemon bill as
        everything else.
        """
        from ..cascade import CascadeClassifier, fit_cascade_calibration
        from ..core.voting import VotingEnsemble
        from ..detect.train import TrainConfig, train_detector
        from ..llm.paper_targets import ALL_MODEL_IDS, GPT_4O_MINI

        train_images = build_survey_dataset(n_images=160, size=256, seed=21)
        holdout = build_survey_dataset(n_images=120, size=256, seed=33)
        detector = train_detector(
            train_images,
            train_config=TrainConfig(epochs=12, batch_size=16),
        ).model
        calibration = fit_cascade_calibration(detector, holdout)
        clients = build_clients(
            [image.scene for image in holdout],
            model_ids=tuple(ALL_MODEL_IDS),
        )
        return CascadeClassifier(
            detector=detector,
            calibration=calibration,
            scout=LLMIndicatorClassifier(clients[GPT_4O_MINI]),
            ensemble=VotingEnsemble(
                classifiers={
                    model_id: LLMIndicatorClassifier(client)
                    for model_id, client in clients.items()
                }
            ),
            meter=self.usage(),
        )

    # -- lifecycle ------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceError("service stack is closed")

    def close(self) -> None:
        """Release every held resource; idempotent.

        This is the explicit close path the journal-backed cache needs
        in a long-lived process — without it the journal file handle
        survives until interpreter shutdown and surfaces as a
        ``ResourceWarning`` under ``filterwarnings = ["error"]``.
        """
        if self._closed:
            return
        self._closed = True
        if self._chat_client is not None:
            self._chat_client.close()
        self.bridge.close()
        self._decoders.clear()

    def __enter__(self) -> "ServiceStack":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
