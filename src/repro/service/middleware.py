"""Per-job middleware: a composable chain around every engine run.

Each job the daemon dispatches flows through a middleware chain — the
familiar onion: every middleware sees the :class:`JobContext`, may act
before and after awaiting ``call_next()``, and whatever it returns is
what the layer above sees.  The daemon folds ``ctx.annotations`` into
the job's durable audit trail after the chain unwinds, so middleware
observations survive restarts alongside the record they describe.

The shipped chain (:data:`DEFAULT_MIDDLEWARE`):

* :func:`trace_annotation` — stamps tenant/kind onto the job's span
  tree and records how many spans the run produced;
* :func:`metrics_tagging` — tags the per-job metrics registry with
  ``service.*`` counters so the job's windowed delta carries its own
  service-level accounting next to the engine's ``survey.*`` counters;
* :func:`budget_guard` — the last line of the never-overspend
  invariant: fails the job if the engine somehow billed more than the
  reservation the scheduler took for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Sequence

from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from .jobs import JobRecord, ServiceError, estimated_fee_usd

__all__ = [
    "DEFAULT_MIDDLEWARE",
    "JobContext",
    "Middleware",
    "budget_guard",
    "metrics_tagging",
    "run_middleware_chain",
    "trace_annotation",
]

#: ``async def middleware(ctx, call_next) -> report``.
Middleware = Callable[["JobContext", Callable[[], Awaitable[Any]]], Any]


@dataclass
class JobContext:
    """Everything a middleware may observe about the run in flight."""

    record: JobRecord
    estimate_usd: float
    tracer: Tracer
    registry: MetricsRegistry
    annotations: dict[str, str] = field(default_factory=dict)


async def run_middleware_chain(
    middlewares: Sequence[Middleware],
    ctx: JobContext,
    terminal: Callable[[], Awaitable[Any]],
) -> Any:
    """Thread ``terminal`` (the engine run) through the chain, inside-out."""

    def wrap(index: int) -> Callable[[], Awaitable[Any]]:
        if index == len(middlewares):
            return terminal

        async def call() -> Any:
            return await middlewares[index](ctx, wrap(index + 1))

        return call

    return await wrap(0)()


async def trace_annotation(
    ctx: JobContext, call_next: Callable[[], Awaitable[Any]]
) -> Any:
    """Record span-tree shape into the job's audit trail."""
    report = await call_next()
    ctx.annotations["trace.root"] = "service.job"
    ctx.annotations["trace.spans"] = str(len(ctx.tracer.spans))
    return report


async def metrics_tagging(
    ctx: JobContext, call_next: Callable[[], Awaitable[Any]]
) -> Any:
    """Count the job in its own windowed registry, tagged by tenant."""
    spec = ctx.record.spec
    ctx.registry.inc("service.jobs.dispatched")
    ctx.registry.inc(f"service.jobs.by_kind.{spec.kind}")
    report = await call_next()
    ctx.registry.inc("service.jobs.finished")
    ctx.annotations["metrics.tenant"] = spec.tenant
    return report


async def budget_guard(
    ctx: JobContext, call_next: Callable[[], Awaitable[Any]]
) -> Any:
    """Refuse to return a report that outspent its reservation.

    The reservation is the worst case (every location, every heading,
    no cache hits on billing), so a breach means fee accounting is
    broken somewhere — failing the job loudly beats silently
    overdrawing a tenant.
    """
    estimate = ctx.estimate_usd
    report = await call_next()
    billed = float(getattr(report, "fees_usd", 0.0) or 0.0)
    if billed > estimate + 1e-9:
        raise ServiceError(
            f"job {ctx.record.job_id}: engine billed ${billed:.6f}, over "
            f"the ${estimate:.6f} reservation "
            f"(worst case {estimated_fee_usd(ctx.record.spec):.6f})"
        )
    ctx.annotations["budget.reserved_usd"] = f"{estimate:.9f}"
    ctx.annotations["budget.report_usd"] = f"{billed:.9f}"
    return report


DEFAULT_MIDDLEWARE: tuple[Middleware, ...] = (
    trace_annotation,
    metrics_tagging,
    budget_guard,
)
