"""Pluggable result sinks: where finished jobs' reports are delivered.

A sink receives every *terminal* job exactly once, right after the
terminal transition was durably flushed — so a sink never sees a job
the manifest does not already agree is finished, and a crash between
flush and delivery re-delivers at most the jobs of the interrupted
batch (sinks should be idempotent on ``job_id``).

Three implementations cover the tentpole's delivery modes:

* :class:`JsonlSink` — append-only session journal, one sorted-key
  JSON line per finished job (the obs export idiom);
* :class:`ReportDirSink` — one fsynced report document per DONE job in
  a directory, named by ``job_id``;
* :class:`CallbackSink` — in-process hand-off for embedding hosts
  (tests, notebooks, the protocol server's ``watch`` op).

Sink failures are contained: the daemon logs the failure into the
job's audit trail and keeps going — a broken downstream must not wedge
the scheduler or poison other tenants' deliveries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Protocol

from ..coordinator.manifest import atomic_write_json
from .jobs import JobRecord

__all__ = [
    "CallbackSink",
    "JsonlSink",
    "ReportDirSink",
    "ResultSink",
]


class ResultSink(Protocol):
    """One delivery target for finished jobs."""

    def deliver(self, record: JobRecord, report: dict | None) -> None:
        """Receive one terminal job (``report`` is ``None`` unless DONE)."""
        ...


class JsonlSink:
    """Append one JSON line per finished job to a session journal."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def deliver(self, record: JobRecord, report: dict | None) -> None:
        line = json.dumps(
            {
                "job_id": record.job_id,
                "tenant": record.spec.tenant,
                "kind": record.spec.kind,
                "state": record.state.value,
                "fees_settled_usd": record.fees_settled_usd,
                "error": record.error,
                "report": report,
            },
            sort_keys=True,
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")


class ReportDirSink:
    """Write each DONE job's report document into a directory.

    Files are written with the coordinator's fsynced atomic idiom and
    named ``<job_id>.json``, so re-delivery after a crash overwrites
    with identical bytes instead of duplicating.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def deliver(self, record: JobRecord, report: dict | None) -> None:
        if report is None:
            return
        atomic_write_json(
            self.directory / f"{record.job_id}.json",
            {
                "job_id": record.job_id,
                "tenant": record.spec.tenant,
                "report": report,
            },
        )


class CallbackSink:
    """Invoke an in-process callable per finished job."""

    def __init__(
        self, callback: Callable[[JobRecord, dict | None], None]
    ) -> None:
        self.callback = callback

    def deliver(self, record: JobRecord, report: dict | None) -> None:
        self.callback(record, report)
