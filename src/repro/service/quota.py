"""Per-tenant quotas and fee budgets for the survey service.

Two layers of admission control:

* **Quotas** (:class:`TenantQuota`) bound *shape*: how many jobs a
  tenant may have active at once and how large a single job may be.
  Violations reject at submit time (:class:`TenantQuotaError`).
* **Budgets** bound *spend*: a tenant's imagery fees, enforced through
  a reserve → settle → release cycle on :class:`TenantLedger` using
  the existing :data:`~repro.gsv.api.FEE_PER_IMAGE_USD` fee
  accounting.  The scheduler reserves the worst-case estimate before
  dispatch and settles the canonical (checkpoint-derived) bill at the
  terminal transition, so ``settled + reserved ≤ budget`` holds at
  every instant and a budget can never go negative.

``on_budget_exhausted`` picks the tentpole's "reject or pause"
semantics per tenant: ``"reject"`` refuses the submit outright;
``"pause"`` admits the job but leaves it QUEUED until a
:meth:`~repro.service.daemon.SurveyService.grant_budget` top-up makes
the reservation fit.
"""

from __future__ import annotations

from dataclasses import dataclass

from .jobs import ServiceError

__all__ = [
    "AdmissionError",
    "BudgetExhaustedError",
    "QueueFullError",
    "TenantLedger",
    "TenantQuota",
    "TenantQuotaError",
]


class AdmissionError(ServiceError):
    """The daemon refused to admit a job."""


class QueueFullError(AdmissionError):
    """The bounded admission queue is full — backpressure, try later."""


class TenantQuotaError(AdmissionError):
    """The tenant's job-shape quota would be exceeded."""


class BudgetExhaustedError(AdmissionError):
    """The tenant's fee budget cannot cover the job's estimate."""


@dataclass(frozen=True)
class TenantQuota:
    """Limits applied to one tenant (or the service default).

    ``budget_usd=None`` means unmetered spend; a float is the tenant's
    total imagery-fee allowance, extendable at runtime through budget
    grants (which are durable, so a restart cannot forget a top-up).
    """

    max_active_jobs: int = 8
    max_locations_per_job: int = 256
    budget_usd: float | None = None
    on_budget_exhausted: str = "reject"

    def __post_init__(self) -> None:
        if self.max_active_jobs < 1:
            raise ValueError(
                f"max_active_jobs must be positive: {self.max_active_jobs}"
            )
        if self.max_locations_per_job < 1:
            raise ValueError(
                "max_locations_per_job must be positive: "
                f"{self.max_locations_per_job}"
            )
        if self.budget_usd is not None and self.budget_usd < 0:
            raise ValueError(f"budget cannot be negative: {self.budget_usd}")
        if self.on_budget_exhausted not in ("reject", "pause"):
            raise ValueError(
                "on_budget_exhausted must be 'reject' or 'pause': "
                f"{self.on_budget_exhausted!r}"
            )


class TenantLedger:
    """One tenant's running fee books: settled, reserved, granted.

    ``settled_usd`` and ``grants_usd`` are durable (persisted in the
    service manifest alongside the job records whose settlement they
    reflect); ``reserved_usd`` is runtime-only and rebuilt empty at
    recovery, because after a restart nothing is RUNNING until the
    scheduler reserves again.
    """

    def __init__(
        self,
        tenant: str,
        quota: TenantQuota,
        *,
        settled_usd: float = 0.0,
        grants_usd: float = 0.0,
    ) -> None:
        self.tenant = tenant
        self.quota = quota
        self.settled_usd = settled_usd
        self.grants_usd = grants_usd
        self.reserved_usd = 0.0

    # -- budget arithmetic ---------------------------------------------

    @property
    def budget_usd(self) -> float | None:
        """Total allowance: the quota budget plus runtime grants."""
        if self.quota.budget_usd is None:
            return None
        return round(self.quota.budget_usd + self.grants_usd, 9)

    def remaining_usd(self) -> float | None:
        """Unreserved headroom (``None`` = unmetered)."""
        budget = self.budget_usd
        if budget is None:
            return None
        return round(budget - self.settled_usd - self.reserved_usd, 9)

    def can_afford(self, estimate_usd: float) -> bool:
        remaining = self.remaining_usd()
        return remaining is None or estimate_usd <= remaining + 1e-12

    # -- reserve / settle / release ------------------------------------

    def reserve(self, estimate_usd: float) -> None:
        """Hold worst-case headroom for a job about to dispatch."""
        if not self.can_afford(estimate_usd):
            raise BudgetExhaustedError(
                f"tenant {self.tenant!r}: estimate ${estimate_usd:.3f} "
                f"exceeds remaining budget ${self.remaining_usd():.3f}"
            )
        self.reserved_usd = round(self.reserved_usd + estimate_usd, 9)

    def settle(self, reservation_usd: float, actual_usd: float) -> None:
        """Convert a reservation into a settled bill, releasing the rest.

        ``actual`` is the canonical checkpoint-derived fee, which by
        construction never exceeds the worst-case reservation — the
        assertion guards the never-negative invariant rather than
        trusting the caller.
        """
        if actual_usd > reservation_usd + 1e-9:
            raise ServiceError(
                f"tenant {self.tenant!r}: settle ${actual_usd:.6f} exceeds "
                f"reservation ${reservation_usd:.6f}"
            )
        self.reserved_usd = round(
            max(0.0, self.reserved_usd - reservation_usd), 9
        )
        self.settled_usd = round(self.settled_usd + actual_usd, 9)

    def release(self, reservation_usd: float) -> None:
        """Drop a reservation without settling (job never billed)."""
        self.reserved_usd = round(
            max(0.0, self.reserved_usd - reservation_usd), 9
        )

    def grant(self, usd: float) -> None:
        if usd < 0:
            raise ValueError(f"grant cannot be negative: {usd}")
        self.grants_usd = round(self.grants_usd + usd, 9)

    def to_dict(self) -> dict:
        return {
            "settled_usd": self.settled_usd,
            "grants_usd": self.grants_usd,
        }
