"""Job model for the survey service: specs, states, durable records.

A *job* is one survey-shaped unit of tenant work — a full
``survey_async`` run, an aggregate-only ``survey_stream_async`` run,
or a cascade-routed survey — submitted to the long-lived
:class:`~repro.service.daemon.SurveyService` daemon.  This module owns
the vocabulary every other service module speaks: the immutable
:class:`JobSpec` a tenant submits, the :class:`JobState` lifecycle, and
the mutable, JSON-durable :class:`JobRecord` the daemon checkpoints to
its manifest on every transition.

The state machine is deliberately small and strictly enforced::

    QUEUED ──▶ RUNNING ──▶ DONE
      │           │ ├────▶ FAILED
      │           │ └────▶ CANCELLED
      │           └──────▶ QUEUED   (daemon restart re-queues)
      ├──────────────────▶ CANCELLED
      └──────────────────▶ FAILED   (quarantined at recovery)

Terminal states are frozen: a record that reached DONE / FAILED /
CANCELLED never transitions again, which — together with the rule that
fee settlement happens *in the same durable write* as the terminal
transition — is what makes tenant billing exactly-once across daemon
crashes (see DESIGN.md §16).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from enum import Enum

from ..geo.coordinates import CARDINAL_HEADINGS
from ..gsv.api import FEE_PER_IMAGE_USD

__all__ = [
    "CAPTURES_PER_LOCATION",
    "JOB_KINDS",
    "JobRecord",
    "JobSpec",
    "JobState",
    "ServiceError",
    "TERMINAL_STATES",
    "UnknownJobError",
    "estimated_fee_usd",
]


class ServiceError(RuntimeError):
    """Base class for survey-service failures."""


class UnknownJobError(ServiceError, KeyError):
    """No job with the requested id exists in this daemon's registry."""


#: Every survey captures the four cardinal headings per location; the
#: worst-case fee estimate a budget reservation is sized to.
CAPTURES_PER_LOCATION = len(CARDINAL_HEADINGS)

#: Job kinds the daemon multiplexes onto the async engines.
#:
#: * ``survey``   — ``survey_async`` with retained per-location results;
#: * ``classify`` — ``survey_stream_async`` in aggregate mode (presence
#:   accumulators only, bounded memory);
#: * ``cascade``  — ``survey_async`` through the cost-aware cascade
#:   router instead of the single classifier.
JOB_KINDS = ("survey", "classify", "cascade")


class JobState(str, Enum):
    """Lifecycle of one submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)

#: Legal transitions; everything else is a programming error worth
#: failing loudly over (a daemon that double-finishes a job would also
#: double-settle its fees).
_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.QUEUED: frozenset(
        {JobState.RUNNING, JobState.CANCELLED, JobState.FAILED}
    ),
    JobState.RUNNING: frozenset(
        {JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.QUEUED}
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}


@dataclass(frozen=True)
class JobSpec:
    """What a tenant asks for: the immutable half of a job.

    ``county_seed`` names the synthetic study county
    (``make_durham_like(seed=county_seed)``) — a JSON-stable identity,
    exactly like the coordinator's manifest fingerprints, so a durable
    record can rebuild its world after a daemon restart.  ``priority``
    is higher-runs-sooner; ties break FIFO on submission order.
    """

    tenant: str
    kind: str = "survey"
    county_seed: int = 3
    n_locations: int = 4
    seed: int = 0
    priority: int = 0
    max_inflight: int = 2
    microbatch: bool | None = None

    def validate(self) -> None:
        if not self.tenant or not self.tenant.strip():
            raise ValueError("job spec needs a non-empty tenant")
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; expected one of {JOB_KINDS}"
            )
        if self.n_locations < 1:
            raise ValueError(
                f"n_locations must be positive: {self.n_locations}"
            )
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be positive: {self.max_inflight}"
            )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        return cls(**{key: payload[key] for key in payload})


def estimated_fee_usd(spec: JobSpec) -> float:
    """Worst-case imagery bill for a spec, the budget reservation size.

    Every location costs at most :data:`CAPTURES_PER_LOCATION` billed
    images; retries never re-bill (billing happens on success), so the
    actual settle is always ≤ this estimate.
    """
    return round(
        spec.n_locations * CAPTURES_PER_LOCATION * FEE_PER_IMAGE_USD, 9
    )


@dataclass
class JobRecord:
    """The durable, mutable half of a job.

    Persisted in full on every state transition through the service
    manifest (fsynced ``atomic_write_json``, the coordinator idiom).
    ``fees_settled_usd`` is written *in the same durable write* as the
    terminal transition — the exactly-once-billing invariant.
    ``progress`` (completed locations so far) is deliberately **not**
    durable per tick: the per-location checkpoint already is, and
    recovery recomputes it from there.
    """

    job_id: str
    spec: JobSpec
    seq: int
    state: JobState = JobState.QUEUED
    attempts: int = 0
    resumed: bool = False
    progress: int = 0
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    fees_settled_usd: float | None = None
    report_path: str | None = None
    audit: list[str] = field(default_factory=list)
    cancel_requested: bool = False

    def transition(self, new_state: JobState) -> None:
        """Move to ``new_state``, enforcing the lifecycle machine."""
        if new_state not in _TRANSITIONS[self.state]:
            raise ServiceError(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def snapshot(self) -> "JobRecord":
        """A detached copy safe to hand across the API boundary."""
        return replace(self, spec=self.spec, audit=list(self.audit))

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "seq": self.seq,
            "state": self.state.value,
            "attempts": self.attempts,
            "resumed": self.resumed,
            "progress": self.progress,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "fees_settled_usd": self.fees_settled_usd,
            "report_path": self.report_path,
            "audit": list(self.audit),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobRecord":
        return cls(
            job_id=payload["job_id"],
            spec=JobSpec.from_dict(payload["spec"]),
            seq=int(payload["seq"]),
            state=JobState(payload["state"]),
            attempts=int(payload.get("attempts", 0)),
            resumed=bool(payload.get("resumed", False)),
            progress=int(payload.get("progress", 0)),
            submitted_at=float(payload.get("submitted_at", 0.0)),
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            error=payload.get("error"),
            fees_settled_usd=payload.get("fees_settled_usd"),
            report_path=payload.get("report_path"),
            audit=list(payload.get("audit", [])),
        )
