"""Survey-as-a-service: the multi-tenant async job daemon.

The service layer (DESIGN.md §16) turns the async survey engines into
a long-lived daemon: many tenants submit survey / classify / cascade
jobs, one shared :class:`~repro.service.stack.ServiceStack` (cache,
limiter, breaker, meter, thread bridge) executes them serially under
per-tenant quotas and fee budgets, and every job leaves a durable
record, an exactly-once settlement, a span tree, and a reconciled
metrics delta behind.  ``repro serve`` is the CLI front end.
"""

from .daemon import JobCancelled, SurveyService
from .jobs import (
    CAPTURES_PER_LOCATION,
    JOB_KINDS,
    TERMINAL_STATES,
    JobRecord,
    JobSpec,
    JobState,
    ServiceError,
    UnknownJobError,
    estimated_fee_usd,
)
from .middleware import (
    DEFAULT_MIDDLEWARE,
    JobContext,
    budget_guard,
    metrics_tagging,
    run_middleware_chain,
    trace_annotation,
)
from .protocol import ServiceProtocol, run_selftest
from .quota import (
    AdmissionError,
    BudgetExhaustedError,
    QueueFullError,
    TenantLedger,
    TenantQuota,
    TenantQuotaError,
)
from .sinks import CallbackSink, JsonlSink, ReportDirSink, ResultSink
from .stack import RateLimitedChatClient, ServiceStack
from .store import (
    FORMAT_VERSION,
    JobStore,
    ServiceStoreError,
    canonical_fees_usd,
    checkpoint_key,
)

__all__ = [
    "AdmissionError",
    "BudgetExhaustedError",
    "CAPTURES_PER_LOCATION",
    "CallbackSink",
    "DEFAULT_MIDDLEWARE",
    "FORMAT_VERSION",
    "JOB_KINDS",
    "JobCancelled",
    "JobContext",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobStore",
    "JsonlSink",
    "QueueFullError",
    "RateLimitedChatClient",
    "ReportDirSink",
    "ResultSink",
    "ServiceError",
    "ServiceProtocol",
    "ServiceStack",
    "ServiceStoreError",
    "SurveyService",
    "TERMINAL_STATES",
    "TenantLedger",
    "TenantQuota",
    "TenantQuotaError",
    "UnknownJobError",
    "budget_guard",
    "canonical_fees_usd",
    "checkpoint_key",
    "estimated_fee_usd",
    "metrics_tagging",
    "run_middleware_chain",
    "run_selftest",
    "trace_annotation",
]
