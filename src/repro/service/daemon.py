"""The survey service daemon: multi-tenant jobs over one shared stack.

:class:`SurveyService` is the tentpole of DESIGN.md §16 — a long-lived
asyncio daemon that accepts survey/classify/cascade jobs from many
tenants and multiplexes them onto the existing async engines
(:meth:`~repro.core.pipeline.NeighborhoodDecoder.survey_async` /
``survey_stream_async``) behind one :class:`~repro.service.stack.ServiceStack`:
one LLM cache, one rate limiter, one circuit breaker, one usage meter,
one warm thread bridge.

**Execution model — concurrent admission, serial execution.**  The
admission APIs (``submit`` / ``status`` / ``cancel`` / ``watch`` /
``grant_budget``) are coroutines and may interleave freely, but jobs
*execute* strictly one at a time: the scheduler drains a priority
queue (priority desc, submission order asc) and awaits each job to
completion before dispatching the next.  Inside one job the engine
still pipelines up to ``spec.max_inflight`` locations — the daemon
multiplexes *tenants over time*, not engine runs over each other.
Serial execution is what makes three guarantees cheap:

* per-job observability — each job runs under its own
  :class:`~repro.obs.trace.Tracer` and
  :class:`~repro.obs.metrics.MetricsRegistry` (installed with the
  ``use_tracer`` / ``use_metrics`` swaps), so every job gets a clean
  span tree rooted at ``service.job`` and a windowed metrics delta
  that :func:`~repro.obs.audit.reconcile_survey` can check;
* byte-identical reports — a job's report equals a standalone
  ``survey_async`` run with the same parameters, because nothing else
  touches the registry or meter mid-run;
* exact fee attribution — the meter delta a job observes is its own.

**Billing — reserve, run, settle, exactly once.**  At dispatch the
scheduler reserves the spec's worst-case imagery estimate against the
tenant's ledger; at the terminal transition it settles the *canonical*
fee — rebuilt from the job's durable per-location checkpoint by
:func:`~repro.service.store.canonical_fees_usd` — in the **same**
fsynced manifest write as the terminal state.  A SIGKILL therefore
leaves either a terminal job with its fee settled, or a non-terminal
job with nothing settled; recovery re-queues (or fails-clean and
salvage-settles) the latter, and terminal records are frozen, so no
tenant is ever billed twice for a location.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

import asyncio

from ..coordinator.manifest import atomic_write_json
from ..obs.audit import SERVICE_STAGES, audit_trace, reconcile_survey
from ..obs.metrics import MetricsRegistry, use_metrics
from ..obs.trace import Tracer, use_tracer
from ..resilience.checkpoint import SurveyCheckpoint
from .jobs import (
    JobRecord,
    JobSpec,
    JobState,
    ServiceError,
    UnknownJobError,
    estimated_fee_usd,
)
from .middleware import DEFAULT_MIDDLEWARE, JobContext, run_middleware_chain
from .quota import (
    BudgetExhaustedError,
    QueueFullError,
    TenantLedger,
    TenantQuota,
    TenantQuotaError,
)
from .sinks import ResultSink
from .stack import ServiceStack
from .store import JobStore, canonical_fees_usd, checkpoint_key

__all__ = ["JobCancelled", "SurveyService"]


class JobCancelled(ServiceError):
    """Raised inside a running job when its cancellation was requested."""


class _TappedCheckpoint(SurveyCheckpoint):
    """The engine's checkpoint with a progress tap on every record.

    The daemon owns each job's checkpoint (it passes it to the engine
    via ``checkpoint_store=``) precisely so it can observe per-location
    completions *as they durably land* — the tap fires after the
    location is persisted, which is also the instant it becomes
    billable.  The tap is where mid-stream cancellation takes effect:
    raising :class:`JobCancelled` aborts the engine between locations,
    leaving every already-recorded location checkpointed and billed
    and nothing else.
    """

    def __init__(self, path, key, on_record) -> None:
        super().__init__(path, key)
        self._on_record = on_record

    def record(self, index: int, payload: dict) -> None:
        super().record(index, payload)
        self._on_record(index, payload)


class SurveyService:
    """Multi-tenant survey daemon over one shared :class:`ServiceStack`."""

    def __init__(
        self,
        stack: ServiceStack,
        state_dir: str | Path,
        *,
        default_quota: TenantQuota | None = None,
        quotas: dict[str, TenantQuota] | None = None,
        max_queue_depth: int = 16,
        max_attempts: int = 2,
        sinks: Iterable[ResultSink] = (),
        middleware: Sequence = DEFAULT_MIDDLEWARE,
        close_stack: bool = True,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be positive: {max_queue_depth}"
            )
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be positive: {max_attempts}")
        self.stack = stack
        self.clock = stack.clock
        self.store = JobStore(state_dir)
        self.default_quota = default_quota or TenantQuota()
        self.quotas = dict(quotas or {})
        self.max_queue_depth = max_queue_depth
        self.max_attempts = max_attempts
        self.sinks: list[ResultSink] = list(sinks)
        self.middleware = tuple(middleware)
        self._close_stack = close_stack
        self._ledgers: dict[str, TenantLedger] = {}
        for tenant, books in self.store.ledger.items():
            self._ledgers[tenant] = TenantLedger(
                tenant,
                self.quota_for(tenant),
                settled_usd=float(books.get("settled_usd", 0.0)),
                grants_usd=float(books.get("grants_usd", 0.0)),
            )
        #: Per-job runtime observability: tracer, registry, reconcile
        #: findings, audit-trace findings.  Not durable — a restarted
        #: daemon has fresh books here, like any metrics process.
        self.observability: dict[str, dict] = {}
        self._watchers: dict[str, list[asyncio.Queue]] = {}
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._runner: asyncio.Task | None = None
        self._running = False
        self._closed = False
        self.recovered: list[str] = self._recover()

    # -- recovery -------------------------------------------------------

    def _recover(self) -> list[str]:
        """Reconcile manifest state left by a previous daemon.

        RUNNING records are the crash signature: the old process died
        mid-job.  Each is either re-queued for resumption (attempts
        remaining — its checkpoint already holds the completed
        locations) or failed clean with a salvage settlement of
        exactly the checkpointed work.  Either way the decision is
        flushed before the daemon accepts new work.
        """
        notes: list[str] = []
        dirty = False
        for record in sorted(self.store.records.values(), key=lambda r: r.seq):
            if record.state is not JobState.RUNNING:
                continue
            dirty = True
            path = self.store.checkpoint_path(record.job_id)
            key = checkpoint_key(
                record.spec, self.stack.county(record.spec.county_seed).name
            )
            record.progress = (
                len(SurveyCheckpoint(path, key)) if path.exists() else 0
            )
            if record.attempts < self.max_attempts:
                record.transition(JobState.QUEUED)
                record.resumed = True
                note = (
                    f"recovered: re-queued after daemon restart "
                    f"(attempt {record.attempts}/{self.max_attempts}, "
                    f"{record.progress} locations checkpointed)"
                )
            else:
                fees = canonical_fees_usd(path, key)
                ledger = self._ledger(record.spec.tenant)
                ledger.settle(fees, fees)
                self.store.ledger[record.spec.tenant] = ledger.to_dict()
                record.transition(JobState.FAILED)
                record.error = (
                    "daemon restart exhausted attempts "
                    f"({record.attempts}/{self.max_attempts})"
                )
                record.finished_at = self.clock.now()
                record.fees_settled_usd = fees
                note = (
                    f"recovered: failed clean after daemon restart, "
                    f"salvage-settled ${fees:.6f}"
                )
            record.audit.append(note)
            notes.append(f"{record.job_id}: {note}")
        if dirty:
            self.store.flush()
        return notes

    # -- tenants --------------------------------------------------------

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def _ledger(self, tenant: str) -> TenantLedger:
        if tenant not in self._ledgers:
            self._ledgers[tenant] = TenantLedger(tenant, self.quota_for(tenant))
        return self._ledgers[tenant]

    def ledger_snapshot(self, tenant: str) -> dict:
        ledger = self._ledger(tenant)
        return {
            "tenant": tenant,
            "budget_usd": ledger.budget_usd,
            "settled_usd": ledger.settled_usd,
            "reserved_usd": ledger.reserved_usd,
            "grants_usd": ledger.grants_usd,
            "remaining_usd": ledger.remaining_usd(),
        }

    # -- admission API --------------------------------------------------

    async def submit(self, spec: JobSpec) -> str:
        """Admit a job; returns its id or raises an admission error.

        Backpressure is explicit: a full admission queue rejects with
        :class:`QueueFullError` rather than buffering unboundedly, and
        quota/budget violations reject before anything durable is
        written — a rejected submit leaves no trace in the manifest.
        """
        self._require_open()
        spec.validate()
        quota = self.quota_for(spec.tenant)
        if spec.n_locations > quota.max_locations_per_job:
            raise TenantQuotaError(
                f"tenant {spec.tenant!r}: {spec.n_locations} locations "
                f"exceeds per-job cap {quota.max_locations_per_job}"
            )
        active = sum(
            1
            for r in self.store.records.values()
            if r.spec.tenant == spec.tenant and not r.terminal
        )
        if active >= quota.max_active_jobs:
            raise TenantQuotaError(
                f"tenant {spec.tenant!r}: {active} active jobs at the "
                f"quota cap {quota.max_active_jobs}"
            )
        queued = sum(
            1
            for r in self.store.records.values()
            if r.state is JobState.QUEUED
        )
        if queued >= self.max_queue_depth:
            raise QueueFullError(
                f"admission queue full ({queued}/{self.max_queue_depth}); "
                "retry after a job finishes"
            )
        estimate = estimated_fee_usd(spec)
        ledger = self._ledger(spec.tenant)
        if not ledger.can_afford(estimate):
            if quota.on_budget_exhausted == "reject":
                raise BudgetExhaustedError(
                    f"tenant {spec.tenant!r}: estimate ${estimate:.3f} "
                    f"exceeds remaining budget "
                    f"${ledger.remaining_usd():.3f}"
                )
            record = self.store.allocate(spec, self.clock.now())
            record.audit.append(
                f"paused: estimate ${estimate:.3f} awaits a budget grant"
            )
            self.store.flush()
            return record.job_id
        record = self.store.allocate(spec, self.clock.now())
        self.store.flush()
        self._kick()
        return record.job_id

    async def status(self, job_id: str) -> JobRecord:
        return self._record(job_id).snapshot()

    async def result(self, job_id: str) -> dict | None:
        """The DONE job's report payload, or ``None`` before/without one."""
        self._record(job_id)
        return self.store.read_report(job_id)

    async def cancel(self, job_id: str) -> bool:
        """Request cancellation; returns whether it could still matter.

        A QUEUED job cancels immediately (terminal, zero fees); a
        RUNNING job gets its flag set and aborts at the next completed
        location, keeping (and paying for) everything checkpointed so
        far.  Terminal jobs are left untouched.
        """
        record = self._record(job_id)
        if record.terminal:
            return False
        if record.state is JobState.QUEUED:
            record.transition(JobState.CANCELLED)
            record.finished_at = self.clock.now()
            record.fees_settled_usd = 0.0
            record.audit.append("cancelled while queued")
            self.store.flush()
            self._finish_side_effects(record)
            return True
        record.cancel_requested = True
        return True

    async def grant_budget(self, tenant: str, usd: float) -> dict:
        """Durably extend a tenant's budget; wakes paused jobs."""
        self._require_open()
        ledger = self._ledger(tenant)
        ledger.grant(usd)
        self.store.ledger[tenant] = ledger.to_dict()
        self.store.flush()
        self._kick()
        return self.ledger_snapshot(tenant)

    async def watch(self, job_id: str):
        """Async-iterate a job's progress events until it is terminal."""
        record = self._record(job_id)
        if record.terminal:
            yield self._event(record, "terminal")
            return
        queue: asyncio.Queue = asyncio.Queue()
        self._watchers.setdefault(job_id, []).append(queue)
        try:
            while True:
                event = await queue.get()
                yield event
                if event["terminal"]:
                    return
        finally:
            self._watchers.get(job_id, []) and self._watchers[
                job_id
            ].remove(queue)

    def jobs(self) -> list[JobRecord]:
        return [
            record.snapshot()
            for record in sorted(
                self.store.records.values(), key=lambda r: r.seq
            )
        ]

    # -- scheduling -----------------------------------------------------

    def _record(self, job_id: str) -> JobRecord:
        try:
            return self.store.records[job_id]
        except KeyError:
            raise UnknownJobError(job_id) from None

    def _kick(self) -> None:
        self._idle.clear()
        self._wake.set()

    def _next_dispatch(self) -> JobRecord | None:
        """Highest-priority affordable QUEUED job; FIFO within a tier.

        Jobs whose tenant can no longer afford their reservation are
        skipped when the tenant's policy is ``pause`` (they wait for a
        grant) and failed clean when it is ``reject`` — the budget may
        have shrunk since admission while earlier jobs settled.
        """
        candidates = sorted(
            (
                r
                for r in self.store.records.values()
                if r.state is JobState.QUEUED
            ),
            key=lambda r: (-r.spec.priority, r.seq),
        )
        for record in candidates:
            ledger = self._ledger(record.spec.tenant)
            estimate = estimated_fee_usd(record.spec)
            if ledger.can_afford(estimate):
                return record
            if self.quota_for(record.spec.tenant).on_budget_exhausted == (
                "reject"
            ):
                record.transition(JobState.FAILED)
                record.error = (
                    f"budget exhausted before dispatch: estimate "
                    f"${estimate:.3f} > remaining "
                    f"${ledger.remaining_usd():.3f}"
                )
                record.finished_at = self.clock.now()
                record.fees_settled_usd = 0.0
                self.store.flush()
                self._finish_side_effects(record)
        return None

    async def run_until_idle(self) -> int:
        """Drain every runnable job serially; returns how many ran.

        The deterministic entry point tests and the ``--selftest``
        drill use instead of the background scheduler: same dispatch
        order, same billing, no task scheduling nondeterminism.
        """
        self._require_open()
        ran = 0
        while True:
            record = self._next_dispatch()
            if record is None:
                self._idle.set()
                return ran
            await self._run_one(record)
            ran += 1

    async def start(self) -> None:
        """Launch the background scheduler loop."""
        self._require_open()
        if self._runner is not None:
            return
        self._running = True
        self._runner = asyncio.get_running_loop().create_task(
            self._scheduler_loop()
        )

    async def stop(self) -> None:
        """Stop the scheduler after the in-flight job (if any) finishes."""
        self._running = False
        self._wake.set()
        if self._runner is not None:
            await self._runner
            self._runner = None

    async def drain(self) -> None:
        """Wait until nothing is dispatchable (all terminal or paused)."""
        await self._idle.wait()

    async def _scheduler_loop(self) -> None:
        while self._running:
            record = self._next_dispatch()
            if record is None:
                self._idle.set()
                self._wake.clear()
                await self._wake.wait()
                continue
            await self._run_one(record)
        self._idle.set()

    # -- execution ------------------------------------------------------

    async def _run_one(self, record: JobRecord) -> None:
        spec = record.spec
        ledger = self._ledger(spec.tenant)
        estimate = estimated_fee_usd(spec)
        ledger.reserve(estimate)
        record.transition(JobState.RUNNING)
        record.attempts += 1
        record.started_at = self.clock.now()
        record.cancel_requested = False
        self.store.flush()
        self._notify(record, "running")

        county = self.stack.county(spec.county_seed)
        key = checkpoint_key(spec, county.name)
        path = self.store.checkpoint_path(record.job_id)

        def on_record(index: int, payload: dict) -> None:
            record.progress += 1
            self._notify(record, "progress")
            if record.cancel_requested:
                raise JobCancelled(record.job_id)

        checkpoint = _TappedCheckpoint(path, key, on_record)
        record.progress = len(checkpoint)
        if record.progress:
            record.resumed = True

        tracer = Tracer(trace_id=record.job_id)
        registry = MetricsRegistry()
        ctx = JobContext(
            record=record,
            estimate_usd=estimate,
            tracer=tracer,
            registry=registry,
        )
        decoder = self.stack.decoder(spec.kind, spec.county_seed)

        async def engine_run():
            if spec.kind == "classify":
                return await decoder.survey_stream_async(
                    county,
                    spec.n_locations,
                    seed=spec.seed,
                    max_inflight=spec.max_inflight,
                    microbatch=spec.microbatch,
                    checkpoint_store=checkpoint,
                    bridge=self.stack.bridge,
                )
            return await decoder.survey_async(
                county,
                spec.n_locations,
                seed=spec.seed,
                max_inflight=spec.max_inflight,
                microbatch=spec.microbatch,
                checkpoint_store=checkpoint,
                bridge=self.stack.bridge,
            )

        try:
            with use_metrics(registry), use_tracer(tracer):
                with tracer.span(
                    "service.job",
                    job_id=record.job_id,
                    tenant=spec.tenant,
                    kind=spec.kind,
                ):
                    report = await run_middleware_chain(
                        self.middleware, ctx, engine_run
                    )
        except JobCancelled:
            self._settle_terminal(
                record, ledger, estimate, JobState.CANCELLED, key, path
            )
            record.audit.append(
                f"cancelled mid-stream after {record.progress} locations"
            )
            self.store.flush()
            self._finish_side_effects(record, tracer, registry)
            return
        except Exception as err:  # noqa: BLE001 - job isolation boundary
            if record.cancel_requested:
                self._settle_terminal(
                    record, ledger, estimate, JobState.CANCELLED, key, path
                )
                record.audit.append(f"cancelled; engine aborted with: {err}")
                self.store.flush()
                self._finish_side_effects(record, tracer, registry)
                return
            if record.attempts < self.max_attempts:
                ledger.release(estimate)
                record.transition(JobState.QUEUED)
                record.audit.append(
                    f"attempt {record.attempts} failed "
                    f"({type(err).__name__}: {err}); re-queued"
                )
                self.store.flush()
                self._notify(record, "requeued")
                return
            self._settle_terminal(
                record, ledger, estimate, JobState.FAILED, key, path
            )
            record.error = f"{type(err).__name__}: {err}"
            self.store.flush()
            self._finish_side_effects(record, tracer, registry)
            return

        payload = json.loads(report.to_json())
        report_path = self.store.write_report(record.job_id, payload)
        record.report_path = str(report_path)
        for name, value in sorted(ctx.annotations.items()):
            record.audit.append(f"{name}={value}")
        self._settle_terminal(
            record, ledger, estimate, JobState.DONE, key, path
        )
        self.store.flush()
        self._finish_side_effects(record, tracer, registry, report)

    def _settle_terminal(
        self,
        record: JobRecord,
        ledger: TenantLedger,
        estimate: float,
        state: JobState,
        key: dict,
        path: Path,
    ) -> None:
        """Bind settlement to the terminal transition (one flush later).

        The canonical fee comes from the durable checkpoint, never the
        in-memory report — so however many attempts the job burned and
        whatever the daemon's meter says, each completed location is
        settled exactly once.
        """
        fees = canonical_fees_usd(path, key)
        ledger.settle(estimate, fees)
        self.store.ledger[record.spec.tenant] = ledger.to_dict()
        record.transition(state)
        record.finished_at = self.clock.now()
        record.fees_settled_usd = fees

    def _finish_side_effects(
        self,
        record: JobRecord,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        report=None,
    ) -> None:
        """Post-flush delivery: obs books, sinks, watcher notification."""
        if tracer is not None and registry is not None:
            books: dict = {
                "tracer": tracer,
                "registry": registry,
                "metrics_delta": registry.delta_since(
                    {"counters": {}, "gauges": {}, "histograms": {}}
                ),
            }
            if report is not None:
                books["reconcile"] = reconcile_survey(report)
                books["audit_trace"] = audit_trace(tracer, SERVICE_STAGES)
            self.observability[record.job_id] = books
        payload = (
            self.store.read_report(record.job_id)
            if record.state is JobState.DONE
            else None
        )
        for sink in self.sinks:
            try:
                sink.deliver(record.snapshot(), payload)
            except Exception as err:  # noqa: BLE001 - sink isolation
                record.audit.append(
                    f"sink {type(sink).__name__} failed: "
                    f"{type(err).__name__}: {err}"
                )
        self._notify(record, "terminal")

    # -- events ---------------------------------------------------------

    def _event(self, record: JobRecord, kind: str) -> dict:
        return {
            "job_id": record.job_id,
            "event": kind,
            "state": record.state.value,
            "progress": record.progress,
            "terminal": record.terminal,
        }

    def _notify(self, record: JobRecord, kind: str) -> None:
        for queue in self._watchers.get(record.job_id, []):
            queue.put_nowait(self._event(record, kind))

    # -- accounting views ----------------------------------------------

    def counts(self) -> dict[str, int]:
        """Job-state census; the conservation-law invariant's left side."""
        census = {state.value: 0 for state in JobState}
        for record in self.store.records.values():
            census[record.state.value] += 1
        census["submitted"] = len(self.store.records)
        return census

    def export_state(self, path: str | Path) -> None:
        """Write a human-auditable daemon snapshot (not the manifest)."""
        atomic_write_json(
            Path(path),
            {
                "counts": self.counts(),
                "ledgers": {
                    tenant: self.ledger_snapshot(tenant)
                    for tenant in sorted(self._ledgers)
                },
                "recovered": self.recovered,
            },
        )

    # -- lifecycle ------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")

    async def close(self) -> None:
        """Stop scheduling, flush, and release the shared stack."""
        if self._closed:
            return
        await self.stop()
        self._closed = True
        self.store.flush()
        if self._close_stack:
            self.stack.close()

    async def __aenter__(self) -> "SurveyService":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()
