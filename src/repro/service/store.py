"""Durable service state: the fsynced job manifest and per-job files.

One JSON manifest (``<state_dir>/service.json``) holds every job
record, the per-tenant fee ledger, and the submission sequence — the
whole restart-critical state of a daemon.  Every mutation rewrites it
through :func:`~repro.coordinator.manifest.atomic_write_json` (temp
file + fsync + rename + directory fsync), the same idiom that makes
the shard coordinator's manifest survive SIGKILL: the file on disk is
always the last *complete* document, so a daemon killed mid-write
restarts from the previous consistent state.

Per-job survey progress does **not** live here — it rides the
existing per-location :class:`~repro.resilience.checkpoint.SurveyCheckpoint`
under ``<state_dir>/checkpoints/``, which is also the billing source
of truth: :func:`canonical_fees_usd` re-accumulates a job's imagery
bill from the checkpoint's durable per-location image counts (the
coordinator-merge fee reconstruction), so however many attempts a job
burned, each completed location is billed exactly once.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..coordinator.manifest import atomic_write_json
from ..gsv.api import FEE_PER_IMAGE_USD
from ..resilience.checkpoint import SurveyCheckpoint
from .jobs import JobRecord, JobSpec, ServiceError

__all__ = [
    "FORMAT_VERSION",
    "JobStore",
    "ServiceStoreError",
    "canonical_fees_usd",
    "checkpoint_key",
]

FORMAT_VERSION = 1


class ServiceStoreError(ServiceError):
    """The service manifest on disk is unreadable or inconsistent."""


def checkpoint_key(spec: JobSpec, county_name: str) -> dict:
    """The engine's checkpoint identity for a job's survey.

    Must match :meth:`NeighborhoodDecoder._open_checkpoint` exactly —
    the daemon opens the store itself (to tap progress through
    ``record`` calls) and hands it to the engine, so a drifting key
    would make resumption silently impossible.
    """
    return {
        "county": county_name,
        "n_locations": spec.n_locations,
        "seed": spec.seed,
    }


def canonical_fees_usd(path: Path, key: dict) -> float:
    """A job's exactly-once imagery bill, rebuilt from durable records.

    The same arithmetic as the coordinator merge: one
    ``FEE_PER_IMAGE_USD`` addition per recorded image, in location
    order.  Crashed attempts left no trace here except the locations
    they completed — which is precisely what the tenant should pay
    for.  Returns 0.0 when the job never checkpointed anything.
    """
    if not path.exists():
        return 0.0
    store = SurveyCheckpoint(path, key)
    fees = 0.0
    for index in store.completed_indices:
        for _ in range(int(store.get(index).get("images", 0))):
            fees += FEE_PER_IMAGE_USD
    return round(fees, 9)


class JobStore:
    """Load/persist the daemon's manifest; hand out per-job paths."""

    def __init__(self, state_dir: str | Path) -> None:
        self.state_dir = Path(state_dir)
        self.manifest_path = self.state_dir / "service.json"
        self.checkpoint_dir = self.state_dir / "checkpoints"
        self.report_dir = self.state_dir / "reports"
        self.records: dict[str, JobRecord] = {}
        self.ledger: dict[str, dict] = {}
        self.next_seq = 0
        if self.manifest_path.exists():
            self._load()

    # -- paths ----------------------------------------------------------

    def checkpoint_path(self, job_id: str) -> Path:
        return self.checkpoint_dir / f"{job_id}.json"

    def report_path(self, job_id: str) -> Path:
        return self.report_dir / f"{job_id}.json"

    # -- persistence ----------------------------------------------------

    def _load(self) -> None:
        try:
            payload = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError) as err:
            raise ServiceStoreError(
                f"service manifest at {self.manifest_path} is unreadable: "
                f"{err}"
            ) from err
        if payload.get("format_version") != FORMAT_VERSION:
            raise ServiceStoreError(
                "unsupported service manifest version: "
                f"{payload.get('format_version')!r}"
            )
        try:
            self.records = {
                entry["job_id"]: JobRecord.from_dict(entry)
                for entry in payload["jobs"]
            }
            self.ledger = dict(payload.get("ledger", {}))
            self.next_seq = int(payload["next_seq"])
        except (KeyError, TypeError, ValueError) as err:
            raise ServiceStoreError(
                f"service manifest at {self.manifest_path} is mangled: {err}"
            ) from err

    def flush(self) -> None:
        """Persist the whole manifest durably (fsynced atomic write).

        Called on every job mutation.  Writing the full document keeps
        settlement atomic with the terminal transition it belongs to:
        a crash leaves either both on disk or neither, never a settled
        fee for a job still RUNNING.
        """
        jobs = [
            record.to_dict()
            for record in sorted(self.records.values(), key=lambda r: r.seq)
        ]
        atomic_write_json(
            self.manifest_path,
            {
                "format_version": FORMAT_VERSION,
                "jobs": jobs,
                "ledger": self.ledger,
                "next_seq": self.next_seq,
            },
        )

    def allocate(self, spec: JobSpec, submitted_at: float) -> JobRecord:
        """Mint the next job record (not yet flushed)."""
        seq = self.next_seq
        self.next_seq += 1
        record = JobRecord(
            job_id=f"job-{seq:04d}",
            spec=spec,
            seq=seq,
            submitted_at=submitted_at,
        )
        self.records[record.job_id] = record
        return record

    def write_report(self, job_id: str, report_payload: dict) -> Path:
        """Persist a job's final report document (fsynced, atomic)."""
        path = self.report_path(job_id)
        atomic_write_json(
            path, {"job_id": job_id, "report": report_payload}
        )
        return path

    def read_report(self, job_id: str) -> dict | None:
        path = self.report_path(job_id)
        if not path.exists():
            return None
        return json.loads(path.read_text())["report"]
