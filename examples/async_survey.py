"""Async pipelined survey: stage overlap, AIMD windowing, micro-batching.

Races the same latency-bound county survey through three engines —
strictly serial, the §8 thread pool, and the §15 asyncio pipeline —
under simulated API round-trips, then proves all three reports are
byte-identical and prints what the async engine's adaptive machinery
actually did (peak in-flight window, micro-batch dispatches).

Run:  python examples/async_survey.py
"""

import asyncio
import time

from repro import build_survey_dataset
from repro.core import LLMIndicatorClassifier, NeighborhoodDecoder
from repro.geo import make_durham_like
from repro.gsv import StreetViewClient
from repro.llm import build_clients
from repro.llm.paper_targets import GEMINI_15_PRO
from repro.perf import LatencyChatClient

N_LOCATIONS = 16
MAX_INFLIGHT = 8
#: Simulated round-trips.  The real GSV/LLM endpoints answer in
#: hundreds of milliseconds; 10 ms keeps the demo quick while staying
#: firmly latency-bound — the regime the pipeline is built for.
LATENCY_S = 0.010


def make_decoder(county, clients):
    return NeighborhoodDecoder(
        street_view=StreetViewClient(
            counties=[county], api_key="demo", latency_s=LATENCY_S
        ),
        classifier=LLMIndicatorClassifier(
            LatencyChatClient(clients[GEMINI_15_PRO], latency_s=LATENCY_S)
        ),
    )


def main():
    county = make_durham_like(seed=3)
    calibration = build_survey_dataset(n_images=60, size=256, seed=77)
    clients = build_clients(
        [image.scene for image in calibration], model_ids=(GEMINI_15_PRO,)
    )

    started = time.perf_counter()
    serial = make_decoder(county, clients).survey(
        county, N_LOCATIONS, seed=0, workers=1
    )
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    threaded = make_decoder(county, clients).survey(
        county, N_LOCATIONS, seed=0, workers=4
    )
    thread_s = time.perf_counter() - started

    started = time.perf_counter()
    pipelined = asyncio.run(
        make_decoder(county, clients).survey_async(
            county, N_LOCATIONS, seed=0, max_inflight=MAX_INFLIGHT
        )
    )
    async_s = time.perf_counter() - started

    print(f"{N_LOCATIONS}-location survey, {LATENCY_S * 1000:.0f} ms "
          "simulated fetch/LLM round-trips:")
    print(f"  serial      {serial_s:6.2f} s")
    print(f"  thread-4    {thread_s:6.2f} s  ({serial_s / thread_s:.1f}x)")
    print(f"  async-{MAX_INFLIGHT}     {async_s:6.2f} s  "
          f"({serial_s / async_s:.1f}x)")

    identical = (
        pipelined.to_json() == serial.to_json() == threaded.to_json()
    )
    print(f"\nreports byte-identical across all three engines: {identical}")

    window = pipelined.pipeline_stats
    print(
        f"AIMD window: started {window['initial_limit']}, "
        f"peaked at {window['peak_inflight']} in flight, "
        f"{window['throttle_events']} throttle events observed"
    )
    batches = pipelined.batch_stats
    print(
        f"micro-batching: {batches['batched_requests']} LLM requests in "
        f"{batches['batches']} dispatches "
        f"(largest window {batches['max_batch_size']})"
    )


if __name__ == "__main__":
    main()
