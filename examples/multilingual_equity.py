"""Multilingual equity: the paper's §V deployment concern, end to end.

The paper warns that non-English prompts lose 15–20 points of recall,
limiting "equitable deployment in linguistically diverse regions", and
suggests few-shot learning as a partial mitigation.  This example
quantifies both: it sweeps the four prompt languages on Gemini, shows
the catastrophic per-class failures, then re-runs each language with
three labeled exemplars prepended and reports how much of the gap
closes.

Run:  python examples/multilingual_equity.py
"""

from repro import (
    ClassificationReport,
    LLMIndicatorClassifier,
    build_clients,
    build_survey_dataset,
)
from repro.core import ClassifierConfig
from repro.core.indicators import Indicator
from repro.llm import GEMINI_15_PRO, Language


def main() -> None:
    dataset = build_survey_dataset(n_images=240, size=320, seed=4)
    truths = [image.presence for image in dataset]
    calibration = build_survey_dataset(n_images=240, size=320, seed=321)
    clients = build_clients(
        [image.scene for image in calibration], model_ids=(GEMINI_15_PRO,)
    )
    exemplars = tuple(calibration.images[:3])

    print("Gemini 1.5 Pro recall by prompt language (zero vs 3-shot)\n")
    header = (
        f"{'language':10s} {'zero-shot':>10s} {'3-shot':>8s} "
        f"{'SW recall':>10s} {'SR recall':>10s}"
    )
    print(header)
    print("-" * len(header))

    english_recall = None
    for language in (
        Language.ENGLISH,
        Language.BENGALI,
        Language.SPANISH,
        Language.CHINESE,
    ):
        zero = LLMIndicatorClassifier(
            clients[GEMINI_15_PRO], ClassifierConfig(language=language)
        ).predictions(dataset.images)
        few = LLMIndicatorClassifier(
            clients[GEMINI_15_PRO],
            ClassifierConfig(
                language=language, few_shot_exemplars=exemplars
            ),
        ).predictions(dataset.images)
        zero_report = ClassificationReport.from_predictions(truths, zero)
        few_report = ClassificationReport.from_predictions(truths, few)
        if language is Language.ENGLISH:
            english_recall = zero_report.mean_recall
        print(
            f"{language.value:10s} {zero_report.mean_recall:10.3f} "
            f"{few_report.mean_recall:8.3f} "
            f"{few_report.counts[Indicator.SIDEWALK].recall:10.2f} "
            f"{few_report.counts[Indicator.SINGLE_LANE_ROAD].recall:10.2f}"
        )

    print(
        "\nEquity gap (recall points below English, zero-shot → 3-shot):"
    )
    for language in (Language.BENGALI, Language.SPANISH, Language.CHINESE):
        zero = LLMIndicatorClassifier(
            clients[GEMINI_15_PRO], ClassifierConfig(language=language)
        ).predictions(dataset.images)
        few = LLMIndicatorClassifier(
            clients[GEMINI_15_PRO],
            ClassifierConfig(
                language=language, few_shot_exemplars=exemplars
            ),
        ).predictions(dataset.images)
        zero_gap = english_recall - ClassificationReport.from_predictions(
            truths, zero
        ).mean_recall
        few_gap = english_recall - ClassificationReport.from_predictions(
            truths, few
        ).mean_recall
        print(
            f"  {language.value}: {zero_gap * 100:5.1f} pts → "
            f"{few_gap * 100:5.1f} pts"
        )


if __name__ == "__main__":
    main()
