"""Quickstart: decode environmental indicators in street-view imagery.

Builds a small survey dataset through the simulated GSV pipeline,
calibrates the four simulated vision LLMs, classifies every image with
Gemini using the paper's parallel prompt, and prints per-indicator
precision / recall / F1 / accuracy (Appendix-table style).

Run:  python examples/quickstart.py
"""

from repro import (
    ClassificationReport,
    LLMIndicatorClassifier,
    build_clients,
    build_survey_dataset,
)


def main() -> None:
    # 1. Collect a survey: two synthetic NC-like counties, roadways
    #    segmented at 50-foot intervals, four headings per location.
    print("Building survey dataset (200 images)...")
    dataset = build_survey_dataset(n_images=200, size=320, seed=0)
    print(f"  {len(dataset)} images; object counts:")
    for indicator, count in dataset.object_counts().items():
        print(f"    {indicator.display_name:18s} {count}")

    # 2. Calibrate the simulated LLM clients on a *separate* sample
    #    (fits each model's response policies to the paper's published
    #    confusion statistics).
    print("\nCalibrating simulated LLM clients...")
    calibration = build_survey_dataset(n_images=240, size=320, seed=99)
    clients = build_clients([image.scene for image in calibration])

    # 3. Classify every survey image with Gemini 1.5 Pro.
    classifier = LLMIndicatorClassifier(clients["gemini-1.5-pro"])
    print("\nPrompt sent per image:\n" + "-" * 60)
    print(classifier.prompt)
    print("-" * 60)

    predictions = classifier.predictions(dataset.images)

    # 4. Score against ground truth.
    truths = [image.presence for image in dataset]
    report = ClassificationReport.from_predictions(truths, predictions)
    print("\nGemini 1.5 Pro vs ground truth:")
    header = f"{'label':20s} {'prec':>6s} {'rec':>6s} {'f1':>6s} {'acc':>6s}"
    print(header)
    print("-" * len(header))
    for row in report.rows():
        print(
            f"{row['label']:20s} {row['precision']:6.3f} "
            f"{row['recall']:6.3f} {row['f1']:6.3f} {row['accuracy']:6.3f}"
        )

    stats = clients["gemini-1.5-pro"].stats
    print(
        f"\nAPI usage: {stats.requests} requests, "
        f"{stats.prompt_tokens + stats.completion_tokens} tokens"
    )


if __name__ == "__main__":
    main()
