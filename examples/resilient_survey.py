"""Resilient survey: surviving a mid-run outage, then resuming.

Runs a checkpointed county survey against a street-view client that is
scripted to fail — a transient burst the retry policy absorbs, then a
daily quota cliff that kills the last locations.  The first pass ends
with partial coverage; a second pass with the same checkpoint fetches
only the missing locations and never re-bills completed ones.  A
``VirtualClock`` drives all backoff, so the demo is instantaneous.

Run:  python examples/resilient_survey.py
"""

import tempfile
from pathlib import Path

from repro import build_survey_dataset
from repro.core import LLMIndicatorClassifier, NeighborhoodDecoder
from repro.geo import make_durham_like
from repro.gsv import StreetViewClient
from repro.gsv.api import FEE_PER_IMAGE_USD, TransientNetworkError
from repro.llm import build_clients
from repro.llm.paper_targets import GEMINI_15_PRO
from repro.resilience import (
    CircuitBreaker,
    FaultSchedule,
    RetryPolicy,
    VirtualClock,
)

N_LOCATIONS = 10


def make_decoder(street_view, classifier, clock):
    return NeighborhoodDecoder(
        street_view=street_view,
        classifier=classifier,
        retry_policy=RetryPolicy(max_attempts=4, base_delay_s=0.5),
        gsv_breaker=CircuitBreaker(
            name="gsv", failure_threshold=10, recovery_time_s=60.0,
            clock=clock,
        ),
        clock=clock,
    )


def describe(label, report):
    print(f"\n{label}")
    print(
        f"  coverage {report.coverage:.0%} "
        f"({len(report.locations)}/{report.requested_locations} locations), "
        f"fees ${report.fees_usd:.3f}"
    )
    stats = report.retry_stats.as_dict()
    print(
        f"  fault handling: {stats['retries']} retries, "
        f"{stats['failures']} failures"
    )
    for failed in report.failed_locations:
        print(f"  failed location {failed.index}: {failed.reason}")


def main() -> None:
    county = make_durham_like(seed=3)
    print("Calibrating LLM client...")
    calibration = build_survey_dataset(n_images=120, size=256, seed=50)
    clients = build_clients(
        [image.scene for image in calibration], model_ids=(GEMINI_15_PRO,)
    )
    classifier = LLMIndicatorClassifier(clients[GEMINI_15_PRO])
    clock = VirtualClock()
    checkpoint = Path(tempfile.mkdtemp()) / "survey.json"

    # Day 1: a transient network burst mid-run, then the daily quota
    # runs out at 70% of the requested locations.
    outage = StreetViewClient(
        counties=[county],
        api_key="demo-key",
        daily_quota=int(0.7 * N_LOCATIONS) * 4,
        fault_schedule=FaultSchedule().burst(
            TransientNetworkError("backbone blip"), start=5, length=3
        ),
    )
    report = make_decoder(outage, classifier, clock).survey(
        county, N_LOCATIONS, seed=7, checkpoint=checkpoint
    )
    describe("Day 1 (burst + quota cliff):", report)
    print(f"  virtual seconds spent backing off: {sum(clock.sleeps):.1f}")

    # Day 2: quota reset, network healthy.  Same checkpoint — only the
    # missing locations are fetched, so nothing is billed twice.
    recovered = StreetViewClient(counties=[county], api_key="demo-key")
    report2 = make_decoder(recovered, classifier, clock).survey(
        county, N_LOCATIONS, seed=7, checkpoint=checkpoint
    )
    describe("Day 2 (resumed from checkpoint):", report2)
    print(
        f"  day-2 billing covered only "
        f"{int(round(report2.fees_usd / FEE_PER_IMAGE_USD))} images"
    )
    print("\nIndicator rates over the completed survey:")
    for indicator, rate in report2.indicator_rates().items():
        print(f"  {indicator.display_name:20s} {rate:.2f}")


if __name__ == "__main__":
    main()
