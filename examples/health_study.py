"""Health association study: the paper's motivating use case.

The introduction cites work linking built-environment indicators to
obesity, diabetes, and physical-activity outcomes (visible powerlines
→ higher prevalence; sidewalks → lower).  This example closes that
loop with the reproduction's pipeline:

1. sample census-tract-like units across an urban county and draw
   synthetic outcome counts from a literature-informed model;
2. decode each tract's indicator exposures with Gemini (zero-shot,
   parallel prompt) — no labeled training data;
3. run the standard tract-level logistic regression twice — once on
   ground-truth exposures, once on the LLM-decoded exposures — and
   compare the recovered coefficients.

The punchline: LLM decoding preserves most association *signs* while
attenuating magnitudes, so it is usable for screening-scale studies
without any annotation effort.

Run:  python examples/health_study.py
"""

from repro import build_clients, build_survey_dataset
from repro.core import LLMIndicatorClassifier
from repro.core.indicators import ALL_INDICATORS, Indicator
from repro.geo import make_durham_like
from repro.health import (
    TRUE_COEFFICIENTS,
    build_tract_survey,
    run_association_study,
)
from repro.llm import GEMINI_15_PRO


def main() -> None:
    county = make_durham_like(seed=3)
    print(f"Sampling 30 tracts across {county.name} County...")
    survey = build_tract_survey(
        county, n_tracts=30, locations_per_tract=5, seed=0
    )
    total_images = sum(len(v) for v in survey.images_by_tract.values())
    print(f"  {len(survey.tracts)} tracts, {total_images} street-view images")

    print("Calibrating the LLM client and decoding exposures...")
    calibration = build_survey_dataset(n_images=240, size=320, seed=77)
    clients = build_clients(
        [image.scene for image in calibration], model_ids=(GEMINI_15_PRO,)
    )
    classifier = LLMIndicatorClassifier(clients[GEMINI_15_PRO])
    decoded = survey.decoded_exposures(classifier)

    truth_study = run_association_study(
        survey, survey.true_exposures(), "ground truth"
    )
    llm_study = run_association_study(survey, decoded, "LLM-decoded")

    for outcome in ("obesity", "diabetes", "physical_inactivity"):
        print(f"\n{outcome} — log-odds coefficients (tract-level)")
        header = (
            f"{'indicator':18s} {'true β':>8s} {'truth-fit':>10s} "
            f"{'LLM-fit':>9s} {'sig?':>5s}"
        )
        print(header)
        print("-" * len(header))
        for indicator in ALL_INDICATORS:
            true_beta = TRUE_COEFFICIENTS[outcome][indicator]
            truth_c = truth_study.coefficient(outcome, indicator)
            llm_c = llm_study.coefficient(outcome, indicator)
            print(
                f"{indicator.display_name:18s} {true_beta:8.2f} "
                f"{truth_c.estimate:10.2f} {llm_c.estimate:9.2f} "
                f"{'yes' if llm_c.significant else 'no':>5s}"
            )

    truth_signs = truth_study.sign_agreement(TRUE_COEFFICIENTS)
    llm_signs = llm_study.sign_agreement(TRUE_COEFFICIENTS)
    print(
        f"\nSign recovery of meaningful effects: ground-truth exposures "
        f"{truth_signs:.0%}, LLM-decoded exposures {llm_signs:.0%}"
    )
    stats = clients[GEMINI_15_PRO].stats
    print(
        f"LLM cost: {stats.requests} requests, "
        f"{stats.prompt_tokens + stats.completion_tokens} tokens, "
        "zero labeled training images"
    )


if __name__ == "__main__":
    main()
