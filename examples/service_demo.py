"""Survey-as-a-service: a multi-tenant daemon session, end to end.

Spins up the §16 :class:`~repro.service.SurveyService` over a shared
client stack, submits a mixed schedule from two tenants — different
priorities, a budget-capped tenant, one job cancelled while queued —
drains it, and prints the durable books the daemon kept: per-job state
and settlement, per-tenant ledgers, and the delivery order the
priority scheduler actually chose.

Everything shown here survives a crash: re-running the daemon over the
same ``state_dir`` resumes interrupted jobs from their per-location
checkpoints instead of re-billing them (see ``repro serve``).

Run:  python examples/service_demo.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro.service import (
    CallbackSink,
    JobSpec,
    ServiceStack,
    SurveyService,
    TenantQuota,
)


async def main():
    delivered = []
    sink = CallbackSink(
        lambda record, report: delivered.append(
            (record.job_id, record.state.value)
        )
    )
    quotas = {
        # acme pays for whatever it queues...
        "acme": TenantQuota(max_active_jobs=4),
        # ...while beta has a hard budget: jobs it cannot afford are
        # rejected at the door instead of stranding reservations.
        "beta": TenantQuota(
            max_active_jobs=4, budget_usd=0.10, on_budget_exhausted="reject"
        ),
    }

    with tempfile.TemporaryDirectory() as tmp:
        stack = ServiceStack()
        async with SurveyService(
            stack, Path(tmp) / "state", quotas=quotas, sinks=(sink,)
        ) as service:
            urgent = await service.submit(
                JobSpec(tenant="acme", n_locations=3, seed=11, priority=5)
            )
            backfill = await service.submit(
                JobSpec(tenant="acme", n_locations=2, seed=12, priority=0)
            )
            metered = await service.submit(
                JobSpec(tenant="beta", n_locations=3, seed=13, priority=1)
            )
            doomed = await service.submit(
                JobSpec(tenant="acme", n_locations=2, seed=14, priority=0)
            )
            await service.cancel(doomed)  # still queued: free, immediate

            try:
                await service.submit(
                    JobSpec(tenant="beta", n_locations=8, seed=15)
                )
            except Exception as err:
                print(f"beta over budget, rejected at admission: {err}")

            await service.run_until_idle()

            # Sinks fire at every terminal transition: the queued
            # cancellation lands first (it was terminal before the
            # drain), then completions in priority order.
            print(f"\nsink delivery order: {delivered}")
            completed = [j for j, state in delivered if state == "done"]
            assert completed[0] == urgent
            assert completed[-1] == backfill
            for job_id in (urgent, backfill, metered, doomed):
                record = await service.status(job_id)
                print(
                    f"{job_id}: {record.spec.tenant:>4} "
                    f"{record.state.value:>9}  "
                    f"settled ${record.fees_settled_usd:.3f}"
                )
            for tenant in ("acme", "beta"):
                print(f"{tenant} ledger: {service.ledger_snapshot(tenant)}")


if __name__ == "__main__":
    asyncio.run(main())
