"""Prompt engineering study: structure, language, and sampling knobs.

Walks through the paper's Section IV-C ablations on a small dataset:

1. parallel vs sequential prompting (Fig. 4),
2. prompt language sweep with the catastrophic per-class failures
   (Fig. 6),
3. temperature / top-p sensitivity (§IV-C4),
4. majority voting over the top three models (Fig. 5).

Run:  python examples/prompt_engineering.py
"""

from repro import (
    ClassificationReport,
    LLMIndicatorClassifier,
    build_clients,
    build_survey_dataset,
)
from repro.core import ClassifierConfig, PromptStyle
from repro.core.indicators import Indicator
from repro.core.voting import vote_predictions
from repro.llm import GEMINI_15_PRO, VOTING_MODEL_IDS, Language


def main() -> None:
    dataset = build_survey_dataset(n_images=240, size=320, seed=0)
    truths = [image.presence for image in dataset]
    calibration = build_survey_dataset(n_images=240, size=320, seed=123)
    clients = build_clients([image.scene for image in calibration])

    def recall_for(config: ClassifierConfig, model_id: str = GEMINI_15_PRO):
        classifier = LLMIndicatorClassifier(clients[model_id], config)
        predictions = classifier.predictions(dataset.images)
        return ClassificationReport.from_predictions(truths, predictions)

    print("1) Prompt structure (average recall)")
    for style in (PromptStyle.PARALLEL, PromptStyle.SEQUENTIAL):
        report = recall_for(ClassifierConfig(style=style))
        print(f"   {style.value:10s} recall={report.mean_recall:.3f}")

    print("\n2) Prompt language (Gemini)")
    for language in (
        Language.ENGLISH,
        Language.BENGALI,
        Language.SPANISH,
        Language.CHINESE,
    ):
        report = recall_for(ClassifierConfig(language=language))
        sidewalk = report.counts[Indicator.SIDEWALK].recall
        single = report.counts[Indicator.SINGLE_LANE_ROAD].recall
        print(
            f"   {language.value}  recall={report.mean_recall:.3f}  "
            f"sidewalk={sidewalk:.2f}  single-lane={single:.2f}"
        )

    print("\n3) Sampling parameters (Gemini F1)")
    for temperature in (0.1, 1.0, 1.5):
        report = recall_for(ClassifierConfig(temperature=temperature))
        print(f"   temperature={temperature}: F1={report.mean_f1:.3f}")
    for top_p in (0.5, 0.75, 0.95):
        report = recall_for(ClassifierConfig(top_p=top_p))
        print(f"   top_p={top_p}: F1={report.mean_f1:.3f}")

    print("\n4) Majority voting (top three models)")
    per_model = {}
    for model_id in VOTING_MODEL_IDS:
        classifier = LLMIndicatorClassifier(clients[model_id])
        per_model[model_id] = classifier.predictions(dataset.images)
        accuracy = ClassificationReport.from_predictions(
            truths, per_model[model_id]
        ).mean_accuracy
        print(f"   {model_id:16s} accuracy={accuracy:.3f}")
    voted = vote_predictions(per_model)
    voted_report = ClassificationReport.from_predictions(truths, voted)
    print(f"   {'majority vote':16s} accuracy={voted_report.mean_accuracy:.3f}")
    print(
        "   single-lane road voted accuracy: "
        f"{voted_report.counts[Indicator.SINGLE_LANE_ROAD].accuracy:.3f} "
        "(the error all models share)"
    )


if __name__ == "__main__":
    main()
