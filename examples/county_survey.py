"""County survey: the public-health use case from the paper's intro.

Decodes neighborhood environments across a rural county (Robeson-like)
and an urban county (Durham-like) with the paper's best configuration —
majority voting over Gemini, Claude, and Grok — and reports
per-location indicator rates by land-use zone, the kind of exposure
variable studies correlate with obesity/diabetes prevalence.

Run:  python examples/county_survey.py
"""

from repro import build_survey_dataset
from repro.core import (
    LLMIndicatorClassifier,
    NeighborhoodDecoder,
    VotingEnsemble,
)
from repro.core.indicators import ALL_INDICATORS
from repro.geo import make_durham_like, make_robeson_like
from repro.gsv import StreetViewClient
from repro.llm import VOTING_MODEL_IDS, build_clients


def main() -> None:
    counties = [make_robeson_like(seed=2), make_durham_like(seed=3)]
    street_view = StreetViewClient(counties=counties, api_key="survey-key")

    print("Calibrating LLM clients...")
    calibration = build_survey_dataset(n_images=240, size=320, seed=50)
    clients = build_clients(
        [image.scene for image in calibration],
        model_ids=VOTING_MODEL_IDS,
    )
    ensemble = VotingEnsemble(
        {
            model_id: LLMIndicatorClassifier(clients[model_id])
            for model_id in VOTING_MODEL_IDS
        }
    )
    decoder = NeighborhoodDecoder(street_view=street_view, ensemble=ensemble)

    for county in counties:
        print(f"\nSurveying {county.name} County (60 locations)...")
        report = decoder.survey(county, n_locations=60, seed=7)
        print(
            f"  images classified: {report.images_classified}; "
            f"GSV fees: ${report.fees_usd:.2f}"
        )
        print(f"  {'indicator':20s} rate")
        for indicator, rate in report.indicator_rates().items():
            bar = "#" * int(rate * 30)
            print(f"  {indicator.display_name:20s} {rate:5.2f} {bar}")

        print("  by land-use zone:")
        for zone, rates in report.rates_by_zone().items():
            summary = "  ".join(
                f"{ind.abbreviation}={rates[ind]:.2f}"
                for ind in ALL_INDICATORS
            )
            print(f"    {zone:12s} {summary}")


if __name__ == "__main__":
    main()
