"""Train the supervised baseline: a YOLO-style detector from scratch.

Reproduces the paper's Section IV-B protocol at a reduced scale: build
the labeled survey, split 70/20/10, train the NanoDetector for 20
epochs with batch size 16, evaluate precision / recall / F1 / mAP50
per class, save the model, and show detections on one test image.

Run:  python examples/train_detector.py
"""

import tempfile
from pathlib import Path

from repro import build_survey_dataset
from repro.detect import (
    NanoDetector,
    TrainConfig,
    evaluate_detector,
    train_detector,
)


def main() -> None:
    print("Building labeled dataset (400 images at 640 px)...")
    dataset = build_survey_dataset(n_images=400, size=640, seed=0)
    splits = dataset.split(seed=1)
    print(
        f"  train/val/test = {len(splits.train)}/{len(splits.val)}/"
        f"{len(splits.test)}"
    )

    print("Training NanoDetector (20 epochs, batch 16)...")
    result = train_detector(
        splits.train, train_config=TrainConfig(epochs=20, seed=0)
    )
    losses = ", ".join(f"{loss:.2f}" for loss in result.loss_history[::5])
    print(f"  loss trajectory: {losses}")

    print("Evaluating on the held-out test split...")
    report = evaluate_detector(result.model, splits.test)
    header = f"{'label':20s} {'prec':>6s} {'rec':>6s} {'f1':>6s} {'mAP50':>6s}"
    print(header)
    print("-" * len(header))
    for row in report.rows():
        print(
            f"{row['label']:20s} {row['precision']:6.3f} "
            f"{row['recall']:6.3f} {row['f1']:6.3f} {row['map50']:6.3f}"
        )

    # Persistence round trip.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "nanodetector.json"
        result.model.save(path)
        loaded = NanoDetector.load(path)
        print(f"\nModel saved and reloaded from {path.name}")

        image = splits.test[0]
        detections = loaded.detect(image.render())
        print(f"Detections on {image.image_id}:")
        for detection in detections:
            x0, y0, x1, y1 = detection.box
            print(
                f"  {detection.indicator.display_name:18s} "
                f"score={detection.score:.2f} "
                f"box=({x0:.2f}, {y0:.2f}, {x1:.2f}, {y1:.2f})"
            )
        truth = ", ".join(
            ind.display_name for ind in image.presence.present
        )
        print(f"  ground truth: {truth or 'nothing'}")


if __name__ == "__main__":
    main()
